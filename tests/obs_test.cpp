// Tests for the telemetry layer: the Json value type (dump/parse
// round-trips, escaping, error reporting), the counter/gauge registry with
// its RAII timers, the Chrome trace-event sink, and the DESIGN.md
// section 15 tracing surface -- the mergeable latency histogram (quantile
// error bound vs exact sorted samples), span trees and their partition
// checker, the crash-safe JSONL event log (rotation, torn-line
// tolerance), and the background stats exporter. The bench records and
// trace files every binary emits are built from exactly these pieces, so
// their invariants are pinned here.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/event_log.h"
#include "src/obs/exporter.h"
#include "src/obs/json.h"
#include "src/obs/latency_histogram.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/trace_event.h"

namespace smd::obs {
namespace {

TEST(Json, ScalarDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersStayIntegers) {
  // 2^53-scale cycle counters must not pick up a ".0" or scientific
  // notation; doubles keep full precision via %.17g.
  EXPECT_EQ(Json(std::uint64_t{9007199254740993ULL}).dump(), "9007199254740992");
  EXPECT_EQ(Json(std::int64_t{123456789012345}).dump(), "123456789012345");
  const Json d = Json::parse("0.1");
  EXPECT_DOUBLE_EQ(d.as_double(), 0.1);
  EXPECT_DOUBLE_EQ(Json::parse(d.dump()).as_double(), 0.1);
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(INFINITY).dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrderAndSetReplaces) {
  Json j = Json::object();
  j.set("z", 1).set("a", 2).set("m", 3);
  EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  j.set("a", 9);  // replace in place, order unchanged
  EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":9,\"m\":3}");
  EXPECT_EQ(j.size(), 3u);
  EXPECT_TRUE(j.contains("m"));
  EXPECT_FALSE(j.contains("q"));
  EXPECT_EQ(j.at("a").as_int(), 9);
  EXPECT_THROW(j.at("q"), std::out_of_range);
}

TEST(Json, ArrayAccess) {
  Json a = Json::array();
  a.push_back(1).push_back("two").push_back(Json::object());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.at(1).as_string(), "two");
  EXPECT_THROW(a.at(3), std::out_of_range);
}

TEST(Json, StringEscapes) {
  const std::string raw = "line\nquote\"back\\slash\ttab\x01";
  const Json j(raw);
  const std::string dumped = j.dump();
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\\""), std::string::npos);
  EXPECT_NE(dumped.find("\\\\"), std::string::npos);
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  EXPECT_EQ(Json::parse(dumped).as_string(), raw);
}

TEST(Json, ParseUnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(Json::parse("\"\\u2603\"").as_string(), "\xe2\x98\x83");   // snowman
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RoundTripNestedDocument) {
  Json doc = Json::object();
  doc.set("name", "fig7").set("ok", true).set("cycles", std::int64_t{1013265});
  Json arr = Json::array();
  for (int i = 0; i < 3; ++i) {
    Json row = Json::object();
    row.set("i", i).set("x", 0.25 * i).set("none", nullptr);
    arr.push_back(std::move(row));
  }
  doc.set("rows", std::move(arr));

  for (int indent : {0, 2}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back.dump(), doc.dump()) << "indent=" << indent;
    EXPECT_EQ(back.at("rows").at(2).at("x").as_double(), 0.5);
    EXPECT_TRUE(back.at("rows").at(0).at("none").is_null());
  }
}

TEST(Json, ParseErrorsCarryOffset) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"\\u12\"", "{\"a\" 1}", "nul", "[1 2]"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
  try {
    Json::parse("[1, x]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(Json, FileRoundTrip) {
  Json j = Json::object();
  j.set("k", 1);
  const std::string path = testing::TempDir() + "/obs_test_roundtrip.json";
  write_file(j, path);
  const Json back = load_file(path);
  EXPECT_EQ(back.dump(), j.dump());
  std::remove(path.c_str());
  EXPECT_THROW(load_file(path), std::runtime_error);
}

TEST(Registry, CountersAndGauges) {
  CounterRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.add("sim.runs");
  reg.add("sim.runs");
  reg.add("mem.words", 128);
  reg.set_gauge("srf.peak", 4096.0);
  EXPECT_EQ(reg.counter("sim.runs"), 2);
  EXPECT_EQ(reg.counter("mem.words"), 128);
  EXPECT_EQ(reg.counter("missing"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge("srf.peak"), 4096.0);
  EXPECT_DOUBLE_EQ(reg.gauge("missing"), 0.0);

  const Json j = reg.to_json();
  EXPECT_EQ(j.at("counters").at("sim.runs").as_int(), 2);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("srf.peak").as_double(), 4096.0);

  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Registry, ScopedTimerAccumulates) {
  CounterRegistry reg;
  for (int i = 0; i < 3; ++i) {
    ScopedTimer t(reg, "phase");
  }
  EXPECT_EQ(reg.counter("phase.calls"), 3);
  EXPECT_GE(reg.gauge("phase.seconds"), 0.0);
}

TEST(Registry, GlobalIsAProcessSingleton) {
  CounterRegistry::global().add("obs_test.probe", 5);
  EXPECT_GE(CounterRegistry::global().counter("obs_test.probe"), 5);
}

// The registry is written from parallel tuner workers; run this suite under
// the `tsan` preset to prove the locking (ROADMAP: thread-safe telemetry).
TEST(Registry, ConcurrentAddsAreLossFree) {
  CounterRegistry reg;
  constexpr int kThreads = 8, kAdds = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      for (int i = 0; i < kAdds; ++i) {
        reg.add("shared.hits");
        reg.set_gauge("shared.peak", static_cast<double>(i));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(reg.counter("shared.hits"), kThreads * kAdds);
}

TEST(Registry, RedirectShardsThenMergeMatchesSerial) {
  // Workers write through CounterRegistry::global() while a
  // ScopedRegistryRedirect points it at a per-thread shard; merging the
  // shards afterwards must equal one thread doing all the work, regardless
  // of merge order (merge is commutative: counters and .seconds gauges add,
  // other gauges take the max).
  constexpr int kThreads = 4, kAdds = 500;
  std::vector<CounterRegistry> shards(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&shards, t] {
      ScopedRegistryRedirect redirect(shards[static_cast<std::size_t>(t)]);
      for (int i = 0; i < kAdds; ++i) {
        CounterRegistry::global().add("worker.ops");
      }
      CounterRegistry::global().set_gauge("worker.rank", static_cast<double>(t));
      CounterRegistry::global().set_gauge("worker.seconds", 0.25);
    });
  }
  for (auto& th : pool) th.join();

  CounterRegistry forward, backward;
  for (int t = 0; t < kThreads; ++t) {
    forward.merge(shards[static_cast<std::size_t>(t)]);
    backward.merge(shards[static_cast<std::size_t>(kThreads - 1 - t)]);
  }
  EXPECT_EQ(forward.counter("worker.ops"), kThreads * kAdds);
  EXPECT_DOUBLE_EQ(forward.gauge("worker.rank"), kThreads - 1.0);  // max
  EXPECT_DOUBLE_EQ(forward.gauge("worker.seconds"), 0.25 * kThreads);  // sum
  EXPECT_EQ(forward.to_json().dump(), backward.to_json().dump());

  // The redirect was scoped: none of it leaked into the process registry.
  EXPECT_EQ(CounterRegistry::process().counter("worker.ops"), 0);
}

TEST(TraceSink, ChromeJsonParsesBack) {
  TraceSink sink;
  sink.set_process_name(0, "variant variable");
  sink.set_track_name(0, 0, "clusters (kernel)");
  sink.set_track_name(0, 1, "memory (SDR 0)");
  sink.add({"kernel interact", "kernel", 0, 0, 1000, 250, {}});
  sink.add({"gather s3", "memory", 0, 1, 500, 900, {}});
  EXPECT_EQ(sink.size(), 2u);

  const Json doc = Json::parse(sink.chrome_json().dump(2));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
  // Trace files carry the same schema versioning as --json bench records.
  EXPECT_EQ(doc.at("schema_version").as_int(), kTraceSchemaVersion);
  const Json& evs = doc.at("traceEvents");
  int n_meta = 0, n_slices = 0;
  for (const Json& e : evs.elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      ++n_meta;
      EXPECT_TRUE(e.at("name").as_string() == "process_name" ||
                  e.at("name").as_string() == "thread_name");
      EXPECT_TRUE(e.at("args").contains("name"));
    } else {
      ASSERT_EQ(ph, "X");
      ++n_slices;
      EXPECT_TRUE(e.contains("ts"));
      EXPECT_TRUE(e.contains("dur"));
    }
  }
  EXPECT_EQ(n_meta, 3);
  EXPECT_EQ(n_slices, 2);

  // ts/dur are microseconds: the 1000 ns kernel slice starts at 1 us.
  for (const Json& e : evs.elements()) {
    if (e.at("ph").as_string() == "X" && e.at("cat").as_string() == "kernel") {
      EXPECT_DOUBLE_EQ(e.at("ts").as_double(), 1.0);
      EXPECT_DOUBLE_EQ(e.at("dur").as_double(), 0.25);
    }
  }
}

TEST(TraceSink, MergeCombinesEventsAndDedupesTrackNames) {
  TraceSink a, b;
  a.set_process_name(0, "run");
  a.set_track_name(0, 0, "clusters (kernel)");
  a.add({"kernel k", "kernel", 0, 0, 0, 100, {}});
  b.set_process_name(0, "run");             // same key: must not duplicate
  b.set_track_name(0, 0, "clusters (kernel)");
  b.set_track_name(0, 1, "memory (SDR 0)");
  b.add({"load s0", "memory", 0, 1, 50, 80, {}});
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  int n_meta = 0;
  const Json doc = a.chrome_json();
  for (const Json& e : doc.at("traceEvents").elements()) {
    if (e.at("ph").as_string() == "M") ++n_meta;
  }
  EXPECT_EQ(n_meta, 3);  // one process_name + two thread_names, no dupes
}

// Parallel tuner workers each trace into a private sink while their
// counters go through a ScopedRegistryRedirect shard; folding the shards
// into the process sink afterwards must land every worker's events exactly
// once, whatever the merge order. Run under the `tsan` preset to prove the
// shards really are thread-confined.
TEST(TraceSink, WorkerShardEventsLandExactlyOnceAfterMerge) {
  constexpr int kThreads = 4, kEvents = 50;
  std::vector<TraceSink> sinks(kThreads);
  std::vector<CounterRegistry> regs(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&sinks, &regs, t] {
      ScopedRegistryRedirect redirect(regs[static_cast<std::size_t>(t)]);
      TraceSink& sink = sinks[static_cast<std::size_t>(t)];
      sink.set_process_name(t, "worker " + std::to_string(t));
      for (int i = 0; i < kEvents; ++i) {
        sink.add({"ev " + std::to_string(t) + "." + std::to_string(i),
                  "kernel", t, 0, static_cast<std::uint64_t>(i) * 10, 10, {}});
        CounterRegistry::global().add("trace.events");
      }
    });
  }
  for (auto& th : pool) th.join();

  TraceSink forward, backward;
  CounterRegistry counters;
  for (int t = 0; t < kThreads; ++t) {
    forward.merge(sinks[static_cast<std::size_t>(t)]);
    backward.merge(sinks[static_cast<std::size_t>(kThreads - 1 - t)]);
    counters.merge(regs[static_cast<std::size_t>(t)]);
  }
  ASSERT_EQ(forward.size(), kThreads * kEvents);
  ASSERT_EQ(backward.size(), kThreads * kEvents);
  // The sinks and the counter shards agree on the event count.
  EXPECT_EQ(counters.counter("trace.events"),
            static_cast<std::int64_t>(forward.size()));
  // Every (name) is distinct, so exactly-once is checkable by uniqueness.
  std::vector<std::string> names;
  for (const TraceEvent& e : forward.events()) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  // Merge order changes event interleaving but not the slice multiset:
  // both orders serialize the same number of slices and metadata records.
  EXPECT_EQ(forward.chrome_json().at("traceEvents").size(),
            backward.chrome_json().at("traceEvents").size());
}

// Timer snapshot consistency under concurrency: add_seconds updates the
// `<name>.seconds` gauge and the `<name>.calls` counter under one lock,
// so any snapshot (to_json takes the same lock) observes them in
// agreement -- calls x 1.0s each means the two values are equal at every
// instant. The svc server's per-phase timers rely on this.
TEST(Registry, ThreadedTimerSnapshotsAreConsistent) {
  CounterRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kAddsPerWriter = 400;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&reg] {
      for (int i = 0; i < kAddsPerWriter; ++i) {
        reg.add_seconds("svc.phase.test", 1.0);
      }
    });
  }
  int snapshots = 0;
  while (reg.counter("svc.phase.test.calls") < kWriters * kAddsPerWriter) {
    const Json snap = reg.to_json();
    const Json* calls = snap.at("counters").find("svc.phase.test.calls");
    const Json* secs = snap.at("gauges").find("svc.phase.test.seconds");
    const std::int64_t n = calls == nullptr ? 0 : calls->as_int();
    const double s = secs == nullptr ? 0.0 : secs->as_double();
    EXPECT_DOUBLE_EQ(s, static_cast<double>(n))
        << "snapshot " << snapshots << " tore a timer update apart";
    ++snapshots;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(reg.counter("svc.phase.test.calls"), kWriters * kAddsPerWriter);
  EXPECT_DOUBLE_EQ(reg.gauge("svc.phase.test.seconds"),
                   static_cast<double>(kWriters * kAddsPerWriter));
}

TEST(TraceSink, WriteProducesLoadableFile) {
  TraceSink sink;
  sink.add({"op", "memory", 0, 1, 0, 10, {}});
  const std::string path = testing::TempDir() + "/obs_test_trace.json";
  sink.write(path);
  const Json doc = load_file(path);
  EXPECT_EQ(doc.at("traceEvents").size(), 1u);
  std::remove(path.c_str());
}

// ---- LatencyHistogram (DESIGN.md section 15). -----------------------------

TEST(LatencyHistogram, BucketGeometryIsContiguousAndConsistent) {
  // The scheme is fixed: every value lands in the bucket whose [lo, hi)
  // range contains it, consecutive buckets tile the axis with no gap or
  // overlap, and log buckets of octave [2^m, 2^(m+1)) are 2^(m-5) wide.
  for (std::size_t i = 0; i < 64 + 32 * 20; ++i) {
    const std::uint64_t lo = LatencyHistogram::bucket_lo(i);
    const std::uint64_t hi = LatencyHistogram::bucket_hi(i);
    ASSERT_LT(lo, hi) << "bucket " << i;
    EXPECT_EQ(LatencyHistogram::bucket_hi(i), LatencyHistogram::bucket_lo(i + 1))
        << "gap/overlap at bucket " << i;
    EXPECT_EQ(LatencyHistogram::bucket_index(lo), i);
    EXPECT_EQ(LatencyHistogram::bucket_index(hi - 1), i);
    if (i < 64) {
      EXPECT_EQ(hi - lo, 1u) << "linear bucket " << i << " must be 1 ns";
    } else {
      // Width 2^(m-5): at most a 1/32 slice of the value, so the midpoint
      // is within 1/64 of any member -- the kQuantileRelErr bound.
      EXPECT_LE(static_cast<double>(hi - lo), static_cast<double>(lo) / 32.0)
          << "bucket " << i;
    }
  }
  // Spot checks across magnitudes, including the linear/log seam.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{63},
        std::uint64_t{64}, std::uint64_t{65}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{1000}, std::uint64_t{123456789},
        std::uint64_t{1} << 40}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    EXPECT_LE(LatencyHistogram::bucket_lo(i), v);
    EXPECT_LT(v, LatencyHistogram::bucket_hi(i));
  }
}

TEST(LatencyHistogram, EmptyNegativeAndExactSmallValues) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0);
  EXPECT_EQ(h.max_ns(), 0);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);

  h.record(-17);  // clamps to 0
  h.record(3);
  h.record(3);
  h.record(7);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min_ns(), 0);
  EXPECT_EQ(h.max_ns(), 7);
  EXPECT_EQ(h.sum_ns(), 13);
  // Below 64 ns the histogram is exact: quantiles are the true order
  // statistics at rank floor(q*n).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
}

/// Exact sorted quantile with the histogram's rank convention.
double exact_quantile(std::vector<std::int64_t> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto rank = std::min<std::size_t>(
      n - 1, static_cast<std::size_t>(q * static_cast<double>(n)));
  return static_cast<double>(sorted[rank]);
}

TEST(LatencyHistogram, QuantilesWithinDocumentedBoundOfExactSorted) {
  // Randomized property check of the kQuantileRelErr = 1/64 bound,
  // against samples spanning nine decades (the service sees ns-scale
  // serialize phases next to ms-scale simulations).
  std::mt19937_64 rng(20260809);
  std::uniform_real_distribution<double> mag(0.0, 9.0);
  LatencyHistogram h;
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::int64_t>(std::pow(10.0, mag(rng)));
    samples.push_back(v);
    h.record(v);
  }
  ASSERT_EQ(h.count(), samples.size());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const double exact = exact_quantile(samples, q);
    const double est = h.quantile(q);
    EXPECT_LE(std::abs(est - exact),
              std::max(1.0, exact * LatencyHistogram::kQuantileRelErr))
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(LatencyHistogram, MergeIsExactAndOrderIndependent) {
  // Same global scheme everywhere => merge is bucket-wise addition:
  // merging shards must be byte-identical to one histogram fed the union,
  // in either merge order.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::int64_t> dist(0, 1 << 20);
  LatencyHistogram a, b, all;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = dist(rng);
    (i % 3 == 0 ? a : b).record(v);
    all.record(v);
  }
  LatencyHistogram ab(a), ba(b);
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.to_json().dump(), all.to_json().dump());
  EXPECT_EQ(ba.to_json().dump(), all.to_json().dump());

  // Self-merge doubles every statistic instead of deadlocking.
  LatencyHistogram self;
  self.record(100);
  self.record(200);
  self.merge(self);
  EXPECT_EQ(self.count(), 4u);
  EXPECT_EQ(self.sum_ns(), 600);

  // Merging an empty histogram is the identity.
  LatencyHistogram empty;
  LatencyHistogram copy(all);
  copy.merge(empty);
  EXPECT_EQ(copy.to_json().dump(), all.to_json().dump());
}

TEST(LatencyHistogram, JsonRoundTripsByteIdentically) {
  LatencyHistogram h;
  for (const std::int64_t v : {0, 1, 63, 64, 999, 123456, 98765432}) {
    h.record(v);
  }
  const Json j = h.to_json();
  EXPECT_EQ(j.at("scheme").as_string(), LatencyHistogram::kScheme);
  const LatencyHistogram back = LatencyHistogram::from_json(j);
  EXPECT_EQ(back.to_json().dump(), j.dump());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.min_ns(), h.min_ns());
  EXPECT_EQ(back.max_ns(), h.max_ns());
  EXPECT_DOUBLE_EQ(back.quantile(0.5), h.quantile(0.5));

  // Unknown scheme and count/bucket disagreement are load errors.
  Json bad_scheme = h.to_json();
  bad_scheme.set("scheme", "us-linear");
  EXPECT_THROW(LatencyHistogram::from_json(bad_scheme), std::runtime_error);
  Json bad_count = h.to_json();
  bad_count.set("count", 999);
  EXPECT_THROW(LatencyHistogram::from_json(bad_count), std::runtime_error);
}

// Server workers record into the shared histograms concurrently; run
// under the `tsan` preset to prove the locking.
TEST(LatencyHistogram, ConcurrentRecordsAreLossFree) {
  LatencyHistogram h;
  constexpr int kThreads = 8, kRecords = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) {
        h.record(t * kRecords + i);
        if (i % 64 == 0) {
          // Concurrent snapshots must see internally consistent state.
          const LatencyHistogram snap(h);
          const Json j = snap.to_json();
          std::uint64_t total = 0;
          for (const Json& pair : j.at("buckets").elements()) {
            total += static_cast<std::uint64_t>(pair.at(1).as_int());
          }
          EXPECT_EQ(total, snap.count());
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(h.count(), kThreads * kRecords);
}

TEST(LatencyHistogram, CopyAndAssignSnapshotConsistently) {
  LatencyHistogram h;
  h.record(10);
  h.record(1000);
  const LatencyHistogram copy(h);
  EXPECT_EQ(copy.to_json().dump(), h.to_json().dump());
  LatencyHistogram assigned;
  assigned.record(5);  // overwritten
  assigned = h;
  EXPECT_EQ(assigned.to_json().dump(), h.to_json().dump());
  assigned = assigned;  // self-assignment is a no-op
  EXPECT_EQ(assigned.count(), 2u);
}

// ---- Spans (DESIGN.md section 15). ----------------------------------------

TEST(Span, LogHandsOutFreshIdsAndRaiiRecords) {
  SpanLog log;
  const SpanContext root = log.make_root();
  EXPECT_NE(root.trace_id, 0u);
  EXPECT_NE(root.span_id, 0u);
  EXPECT_EQ(root.parent_id, 0u);
  const SpanContext child = log.make_child(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
  const SpanContext root2 = log.make_root();
  EXPECT_NE(root2.trace_id, root.trace_id);

  {
    Span outer(log, "outer");
    outer.set_arg("req-1");
    Span inner(log, "inner", outer.context());
    inner.end();
    inner.end();  // idempotent: still one record
    EXPECT_EQ(log.size(), 1u);
  }  // outer records at destruction
  ASSERT_EQ(log.size(), 2u);
  const std::vector<SpanRecord> spans = log.snapshot();
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.arg, "req-1");
  EXPECT_EQ(inner.ctx.trace_id, outer.ctx.trace_id);
  EXPECT_EQ(inner.ctx.parent_id, outer.ctx.span_id);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  EXPECT_GE(inner.duration_ns(), 0);
  log.clear();
  EXPECT_TRUE(log.empty());
}

TEST(Span, JsonRoundTrip) {
  SpanRecord rec;
  rec.ctx = {0xdeadbeefcafef00dULL, 42, 7};
  rec.name = "simulate";
  rec.category = "svc.phase";
  rec.arg = "job-3";
  rec.start_ns = 123456789;
  rec.end_ns = 987654321;
  const Json j = span_json(rec);
  EXPECT_EQ(j.at("type").as_string(), "span");
  EXPECT_EQ(j.at("trace").as_string(), "deadbeefcafef00d");
  const SpanRecord back = span_from_json(j);
  EXPECT_EQ(back.ctx.trace_id, rec.ctx.trace_id);
  EXPECT_EQ(back.ctx.span_id, rec.ctx.span_id);
  EXPECT_EQ(back.ctx.parent_id, rec.ctx.parent_id);
  EXPECT_EQ(back.name, rec.name);
  EXPECT_EQ(back.category, rec.category);
  EXPECT_EQ(back.arg, rec.arg);
  EXPECT_EQ(back.start_ns, rec.start_ns);
  EXPECT_EQ(back.end_ns, rec.end_ns);
  // And byte-identically through a second render.
  EXPECT_EQ(span_json(back).dump(), j.dump());

  EXPECT_THROW(span_from_json(Json::object()), std::runtime_error);
}

/// A three-phase trace whose children tile the root exactly.
std::vector<SpanRecord> tiled_trace(SpanLog& log, std::int64_t t0,
                                    const std::string& arg) {
  const SpanContext root_ctx = log.make_root();
  std::vector<SpanRecord> spans;
  spans.push_back({root_ctx, "request", "svc", arg, t0, t0 + 600});
  const char* names[] = {"alpha", "beta", "gamma"};
  const std::int64_t cuts[] = {0, 100, 350, 600};
  for (int i = 0; i < 3; ++i) {
    spans.push_back({log.make_child(root_ctx), names[i], "svc.phase", "",
                     t0 + cuts[i], t0 + cuts[i + 1]});
  }
  return spans;
}

TEST(Span, ChromeExportRoundTripsExactly) {
  // Spans survive the trip through the (microsecond-double) Chrome trace
  // because the exact ns timestamps and ids ride in the slice args.
  SpanLog log;
  for (const SpanRecord& rec : tiled_trace(log, 1000, "job-0")) {
    log.record(rec);
  }
  for (const SpanRecord& rec : tiled_trace(log, 2500, "job-1")) {
    log.record(rec);
  }
  TraceSink sink;
  // A non-span slice in the same sink must not confuse the reader.
  sink.add({"kernel interact", "kernel", 0, 0, 0, 10, {}});
  log.append_chrome(&sink);

  const Json doc = Json::parse(sink.chrome_json().dump(2));
  const std::vector<SpanRecord> back = spans_from_chrome(doc);
  const std::vector<SpanRecord> orig = log.snapshot();
  ASSERT_EQ(back.size(), orig.size());
  std::map<std::uint64_t, const SpanRecord*> by_span;
  for (const SpanRecord& rec : back) by_span[rec.ctx.span_id] = &rec;
  for (const SpanRecord& rec : orig) {
    ASSERT_TRUE(by_span.count(rec.ctx.span_id)) << rec.name;
    const SpanRecord& b = *by_span[rec.ctx.span_id];
    EXPECT_EQ(b.ctx.trace_id, rec.ctx.trace_id);
    EXPECT_EQ(b.ctx.parent_id, rec.ctx.parent_id);
    EXPECT_EQ(b.name, rec.name);
    EXPECT_EQ(b.start_ns, rec.start_ns) << rec.name;
    EXPECT_EQ(b.end_ns, rec.end_ns) << rec.name;
    EXPECT_EQ(b.arg, rec.arg);
  }
  // Both reconstructed traces still partition exactly.
  std::map<std::uint64_t, std::vector<SpanRecord>> traces;
  for (const SpanRecord& rec : back) traces[rec.ctx.trace_id].push_back(rec);
  ASSERT_EQ(traces.size(), 2u);
  for (const auto& [trace_id, spans] : traces) {
    std::string why;
    EXPECT_TRUE(spans_partition_exactly(spans, &why)) << why;
  }
}

TEST(Span, PartitionCheckerRejectsBrokenTrees) {
  SpanLog log;
  std::string why;

  std::vector<SpanRecord> good = tiled_trace(log, 0, "ok");
  EXPECT_TRUE(spans_partition_exactly(good, &why)) << why;

  {  // Gap: second child starts after the first ends.
    std::vector<SpanRecord> t = tiled_trace(log, 0, "gap");
    t[2].start_ns += 10;
    EXPECT_FALSE(spans_partition_exactly(t, &why));
    EXPECT_FALSE(why.empty());
  }
  {  // Overlap: second child starts before the first ends.
    std::vector<SpanRecord> t = tiled_trace(log, 0, "overlap");
    t[2].start_ns -= 10;
    EXPECT_FALSE(spans_partition_exactly(t, nullptr));
  }
  {  // Last child falls short of the root's end.
    std::vector<SpanRecord> t = tiled_trace(log, 0, "short");
    t[3].end_ns -= 10;
    EXPECT_FALSE(spans_partition_exactly(t, &why));
  }
  {  // First child misses the root's start.
    std::vector<SpanRecord> t = tiled_trace(log, 0, "late");
    t[1].start_ns += 10;
    EXPECT_FALSE(spans_partition_exactly(t, &why));
  }
  {  // Two roots in one trace.
    std::vector<SpanRecord> t = tiled_trace(log, 0, "tworoots");
    SpanRecord extra = t[0];
    extra.ctx.span_id += 1000;
    t.push_back(extra);
    EXPECT_FALSE(spans_partition_exactly(t, &why));
  }
  {  // No root at all.
    std::vector<SpanRecord> t = tiled_trace(log, 0, "noroot");
    t.erase(t.begin());
    EXPECT_FALSE(spans_partition_exactly(t, &why));
  }
  // Order independence: shuffling the good trace must not matter.
  std::mt19937 rng(11);
  std::shuffle(good.begin(), good.end(), rng);
  EXPECT_TRUE(spans_partition_exactly(good, &why)) << why;
}

// ---- Event log (DESIGN.md section 15). ------------------------------------

Json event(const std::string& kind, int i) {
  Json j = Json::object();
  j.set("type", kind).set("i", i);
  return j;
}

TEST(EventLog, AppendReloadAndCounters) {
  const std::string path = testing::TempDir() + "/obs_test_events.jsonl";
  const std::int64_t appended0 =
      CounterRegistry::process().counter("obs.events.appended");
  {
    EventLog log;
    EXPECT_FALSE(log.enabled());
    log.append(event("noop", 0));  // no-op before open
    log.open(path);
    EXPECT_TRUE(log.enabled());
    for (int i = 0; i < 5; ++i) log.append(event("probe", i));
  }  // destructor closes
  const EventLogLoad load = load_event_log(path);
  EXPECT_EQ(load.dropped, 0u);
  ASSERT_EQ(load.events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(load.events[static_cast<std::size_t>(i)].at("i").as_int(), i);
  }
  EXPECT_EQ(CounterRegistry::process().counter("obs.events.appended"),
            appended0 + 5);

  // A missing file is an empty log, never a throw.
  std::remove(path.c_str());
  const EventLogLoad missing = load_event_log(path);
  EXPECT_TRUE(missing.events.empty());
  EXPECT_EQ(missing.dropped, 0u);
}

TEST(EventLog, TornFinalLineIsDroppedAndCounted) {
  // A crash can tear at most the flushed-per-line final record; the
  // tolerant reader must keep everything before it and count the loss
  // (same warm-start policy as tune.cache.load_corrupt).
  const std::string path = testing::TempDir() + "/obs_test_torn.jsonl";
  {
    EventLog log;
    log.open(path);
    for (int i = 0; i < 3; ++i) log.append(event("probe", i));
  }
  {
    std::ofstream os(path, std::ios::app | std::ios::binary);
    os << "{\"type\":\"probe\",\"i\":3";  // torn mid-write, no newline
  }
  const std::int64_t torn0 =
      CounterRegistry::process().counter("obs.events.load_torn");
  const EventLogLoad load = load_event_log(path);
  EXPECT_EQ(load.events.size(), 3u);
  EXPECT_EQ(load.dropped, 1u);
  EXPECT_EQ(CounterRegistry::process().counter("obs.events.load_torn"),
            torn0 + 1);
  std::remove(path.c_str());
}

TEST(EventLog, RotationArchivesEveryEventExactlyOnce) {
  const std::string path = testing::TempDir() + "/obs_test_rotate.jsonl";
  EventLog log;
  // The archive holds the most recent finished segment, so size the
  // budget for exactly one rotation: 40 events total ~950 bytes crosses
  // the 600-byte line once, and the remainder (< 350 bytes) cannot cross
  // it again.
  log.open(path, 600);
  std::remove(log.archive_path().c_str());
  const std::int64_t rotated0 =
      CounterRegistry::process().counter("obs.events.rotated");
  constexpr int kEvents = 40;
  for (int i = 0; i < kEvents; ++i) log.append(event("probe", i));
  log.close();
  EXPECT_EQ(CounterRegistry::process().counter("obs.events.rotated"),
            rotated0 + 1);

  // The archive is one complete JSON array document (written atomically),
  // the live file holds the most recent segment; between them every event
  // index appears, in order, with the archive holding the older ones.
  const Json archive = load_file(log.archive_path());
  EXPECT_GT(archive.size(), 0u);
  const EventLogLoad live = load_event_log(path);
  EXPECT_EQ(live.dropped, 0u);
  std::vector<std::int64_t> live_idx;
  for (const Json& e : live.events) live_idx.push_back(e.at("i").as_int());
  // The live segment is the tail: it ends at the last appended event.
  ASSERT_FALSE(live_idx.empty());
  EXPECT_EQ(live_idx.back(), kEvents - 1);
  // Rotation is at-least-once (a crash between archive and restart may
  // duplicate), but in-process it is exact: archive + live == appended.
  std::vector<std::int64_t> all;
  for (const Json& e : archive.elements()) all.push_back(e.at("i").as_int());
  all.insert(all.end(), live_idx.begin(), live_idx.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);

  std::remove(path.c_str());
  std::remove(log.archive_path().c_str());
}

TEST(EventLog, OpenFailureThrows) {
  EventLog log;
  EXPECT_THROW(log.open(testing::TempDir() + "/no_such_dir_xyz/events.jsonl"),
               std::runtime_error);
  EXPECT_FALSE(log.enabled());
}

// ---- write_file_atomic failure paths. -------------------------------------

TEST(WriteFileAtomic, UnwritableDirectoryThrowsAndLeavesNoTemp) {
  Json j = Json::object();
  j.set("k", 1);
  const std::string path = testing::TempDir() + "/no_such_dir_xyz/out.json";
  EXPECT_THROW(write_file_atomic(j, path), std::runtime_error);
  // Neither the target nor a stray temp file may exist afterwards.
  EXPECT_THROW(load_file(path), std::runtime_error);
  EXPECT_THROW(load_file(path + ".tmp"), std::runtime_error);
}

TEST(WriteFileAtomic, ReplacesExistingTargetAtomically) {
  const std::string path = testing::TempDir() + "/obs_test_atomic.json";
  Json v1 = Json::object();
  v1.set("gen", 1);
  write_file(v1, path);  // rename target already exists
  Json v2 = Json::object();
  v2.set("gen", 2);
  write_file_atomic(v2, path);
  EXPECT_EQ(load_file(path).at("gen").as_int(), 2);
  // The temp file was consumed by the rename.
  EXPECT_THROW(load_file(path + ".tmp"), std::runtime_error);
  std::remove(path.c_str());
}

// ---- Stats exporter (DESIGN.md section 15). -------------------------------

TEST(StatsExporter, StopEmitsFinalSnapshotToFile) {
  // Even a run far shorter than the interval produces one snapshot: the
  // one-shot --stats path of smdserve is exactly start() + stop().
  const std::string path = testing::TempDir() + "/obs_test_stats.json";
  CounterRegistry::process().add("obs_test.exporter_probe", 3);
  StatsExporter exp;
  EXPECT_FALSE(exp.running());
  StatsExporter::Options opts;
  opts.interval_ms = 1'000'000;
  opts.path = path;
  opts.extra = [] {
    Json e = Json::object();
    e.set("probe", true);
    return e;
  };
  exp.start(opts);
  EXPECT_TRUE(exp.running());
  exp.stop();
  exp.stop();  // idempotent
  EXPECT_FALSE(exp.running());
  EXPECT_GE(exp.snapshots(), 1u);

  const Json snap = load_file(path);
  EXPECT_EQ(snap.at("type").as_string(), "stats");
  EXPECT_TRUE(snap.contains("seq"));
  EXPECT_TRUE(snap.contains("uptime_ms"));
  EXPECT_GE(snap.at("registry").at("counters").at("obs_test.exporter_probe")
                .as_int(),
            3);
  EXPECT_TRUE(snap.at("extra").at("probe").as_bool());
  std::remove(path.c_str());
}

TEST(StatsExporter, PeriodicSnapshotsLandInEventLog) {
  const std::string path = testing::TempDir() + "/obs_test_stats.jsonl";
  EventLog log;
  log.open(path);
  StatsExporter exp;
  StatsExporter::Options opts;
  opts.interval_ms = 5;
  opts.event_log = &log;
  exp.start(opts);
  // Wait for the cadence to prove itself rather than sleeping blind.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (exp.snapshots() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  exp.stop();
  log.close();
  const std::uint64_t emitted = exp.snapshots();
  ASSERT_GE(emitted, 3u);

  const EventLogLoad load = load_event_log(path);
  EXPECT_EQ(load.dropped, 0u);
  std::vector<std::int64_t> seqs;
  for (const Json& e : load.events) {
    if (e.at("type").as_string() == "stats") seqs.push_back(e.at("seq").as_int());
  }
  ASSERT_EQ(seqs.size(), emitted);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], static_cast<std::int64_t>(i));  // gap-free sequence
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smd::obs
