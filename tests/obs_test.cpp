// Tests for the telemetry layer: the Json value type (dump/parse
// round-trips, escaping, error reporting), the counter/gauge registry with
// its RAII timers, and the Chrome trace-event sink. The bench records and
// trace files every binary emits are built from exactly these pieces, so
// their invariants are pinned here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/registry.h"
#include "src/obs/trace_event.h"

namespace smd::obs {
namespace {

TEST(Json, ScalarDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersStayIntegers) {
  // 2^53-scale cycle counters must not pick up a ".0" or scientific
  // notation; doubles keep full precision via %.17g.
  EXPECT_EQ(Json(std::uint64_t{9007199254740993ULL}).dump(), "9007199254740992");
  EXPECT_EQ(Json(std::int64_t{123456789012345}).dump(), "123456789012345");
  const Json d = Json::parse("0.1");
  EXPECT_DOUBLE_EQ(d.as_double(), 0.1);
  EXPECT_DOUBLE_EQ(Json::parse(d.dump()).as_double(), 0.1);
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(INFINITY).dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrderAndSetReplaces) {
  Json j = Json::object();
  j.set("z", 1).set("a", 2).set("m", 3);
  EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  j.set("a", 9);  // replace in place, order unchanged
  EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":9,\"m\":3}");
  EXPECT_EQ(j.size(), 3u);
  EXPECT_TRUE(j.contains("m"));
  EXPECT_FALSE(j.contains("q"));
  EXPECT_EQ(j.at("a").as_int(), 9);
  EXPECT_THROW(j.at("q"), std::out_of_range);
}

TEST(Json, ArrayAccess) {
  Json a = Json::array();
  a.push_back(1).push_back("two").push_back(Json::object());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.at(1).as_string(), "two");
  EXPECT_THROW(a.at(3), std::out_of_range);
}

TEST(Json, StringEscapes) {
  const std::string raw = "line\nquote\"back\\slash\ttab\x01";
  const Json j(raw);
  const std::string dumped = j.dump();
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\\""), std::string::npos);
  EXPECT_NE(dumped.find("\\\\"), std::string::npos);
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  EXPECT_EQ(Json::parse(dumped).as_string(), raw);
}

TEST(Json, ParseUnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(Json::parse("\"\\u2603\"").as_string(), "\xe2\x98\x83");   // snowman
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RoundTripNestedDocument) {
  Json doc = Json::object();
  doc.set("name", "fig7").set("ok", true).set("cycles", std::int64_t{1013265});
  Json arr = Json::array();
  for (int i = 0; i < 3; ++i) {
    Json row = Json::object();
    row.set("i", i).set("x", 0.25 * i).set("none", nullptr);
    arr.push_back(std::move(row));
  }
  doc.set("rows", std::move(arr));

  for (int indent : {0, 2}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back.dump(), doc.dump()) << "indent=" << indent;
    EXPECT_EQ(back.at("rows").at(2).at("x").as_double(), 0.5);
    EXPECT_TRUE(back.at("rows").at(0).at("none").is_null());
  }
}

TEST(Json, ParseErrorsCarryOffset) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"\\u12\"", "{\"a\" 1}", "nul", "[1 2]"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
  try {
    Json::parse("[1, x]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(Json, FileRoundTrip) {
  Json j = Json::object();
  j.set("k", 1);
  const std::string path = testing::TempDir() + "/obs_test_roundtrip.json";
  write_file(j, path);
  const Json back = load_file(path);
  EXPECT_EQ(back.dump(), j.dump());
  std::remove(path.c_str());
  EXPECT_THROW(load_file(path), std::runtime_error);
}

TEST(Registry, CountersAndGauges) {
  CounterRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.add("sim.runs");
  reg.add("sim.runs");
  reg.add("mem.words", 128);
  reg.set_gauge("srf.peak", 4096.0);
  EXPECT_EQ(reg.counter("sim.runs"), 2);
  EXPECT_EQ(reg.counter("mem.words"), 128);
  EXPECT_EQ(reg.counter("missing"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge("srf.peak"), 4096.0);
  EXPECT_DOUBLE_EQ(reg.gauge("missing"), 0.0);

  const Json j = reg.to_json();
  EXPECT_EQ(j.at("counters").at("sim.runs").as_int(), 2);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("srf.peak").as_double(), 4096.0);

  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Registry, ScopedTimerAccumulates) {
  CounterRegistry reg;
  for (int i = 0; i < 3; ++i) {
    ScopedTimer t(reg, "phase");
  }
  EXPECT_EQ(reg.counter("phase.calls"), 3);
  EXPECT_GE(reg.gauge("phase.seconds"), 0.0);
}

TEST(Registry, GlobalIsAProcessSingleton) {
  CounterRegistry::global().add("obs_test.probe", 5);
  EXPECT_GE(CounterRegistry::global().counter("obs_test.probe"), 5);
}

// The registry is written from parallel tuner workers; run this suite under
// the `tsan` preset to prove the locking (ROADMAP: thread-safe telemetry).
TEST(Registry, ConcurrentAddsAreLossFree) {
  CounterRegistry reg;
  constexpr int kThreads = 8, kAdds = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      for (int i = 0; i < kAdds; ++i) {
        reg.add("shared.hits");
        reg.set_gauge("shared.peak", static_cast<double>(i));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(reg.counter("shared.hits"), kThreads * kAdds);
}

TEST(Registry, RedirectShardsThenMergeMatchesSerial) {
  // Workers write through CounterRegistry::global() while a
  // ScopedRegistryRedirect points it at a per-thread shard; merging the
  // shards afterwards must equal one thread doing all the work, regardless
  // of merge order (merge is commutative: counters and .seconds gauges add,
  // other gauges take the max).
  constexpr int kThreads = 4, kAdds = 500;
  std::vector<CounterRegistry> shards(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&shards, t] {
      ScopedRegistryRedirect redirect(shards[static_cast<std::size_t>(t)]);
      for (int i = 0; i < kAdds; ++i) {
        CounterRegistry::global().add("worker.ops");
      }
      CounterRegistry::global().set_gauge("worker.rank", static_cast<double>(t));
      CounterRegistry::global().set_gauge("worker.seconds", 0.25);
    });
  }
  for (auto& th : pool) th.join();

  CounterRegistry forward, backward;
  for (int t = 0; t < kThreads; ++t) {
    forward.merge(shards[static_cast<std::size_t>(t)]);
    backward.merge(shards[static_cast<std::size_t>(kThreads - 1 - t)]);
  }
  EXPECT_EQ(forward.counter("worker.ops"), kThreads * kAdds);
  EXPECT_DOUBLE_EQ(forward.gauge("worker.rank"), kThreads - 1.0);  // max
  EXPECT_DOUBLE_EQ(forward.gauge("worker.seconds"), 0.25 * kThreads);  // sum
  EXPECT_EQ(forward.to_json().dump(), backward.to_json().dump());

  // The redirect was scoped: none of it leaked into the process registry.
  EXPECT_EQ(CounterRegistry::process().counter("worker.ops"), 0);
}

TEST(TraceSink, ChromeJsonParsesBack) {
  TraceSink sink;
  sink.set_process_name(0, "variant variable");
  sink.set_track_name(0, 0, "clusters (kernel)");
  sink.set_track_name(0, 1, "memory (SDR 0)");
  sink.add({"kernel interact", "kernel", 0, 0, 1000, 250});
  sink.add({"gather s3", "memory", 0, 1, 500, 900});
  EXPECT_EQ(sink.size(), 2u);

  const Json doc = Json::parse(sink.chrome_json().dump(2));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
  // Trace files carry the same schema versioning as --json bench records.
  EXPECT_EQ(doc.at("schema_version").as_int(), kTraceSchemaVersion);
  const Json& evs = doc.at("traceEvents");
  int n_meta = 0, n_slices = 0;
  for (const Json& e : evs.elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      ++n_meta;
      EXPECT_TRUE(e.at("name").as_string() == "process_name" ||
                  e.at("name").as_string() == "thread_name");
      EXPECT_TRUE(e.at("args").contains("name"));
    } else {
      ASSERT_EQ(ph, "X");
      ++n_slices;
      EXPECT_TRUE(e.contains("ts"));
      EXPECT_TRUE(e.contains("dur"));
    }
  }
  EXPECT_EQ(n_meta, 3);
  EXPECT_EQ(n_slices, 2);

  // ts/dur are microseconds: the 1000 ns kernel slice starts at 1 us.
  for (const Json& e : evs.elements()) {
    if (e.at("ph").as_string() == "X" && e.at("cat").as_string() == "kernel") {
      EXPECT_DOUBLE_EQ(e.at("ts").as_double(), 1.0);
      EXPECT_DOUBLE_EQ(e.at("dur").as_double(), 0.25);
    }
  }
}

TEST(TraceSink, MergeCombinesEventsAndDedupesTrackNames) {
  TraceSink a, b;
  a.set_process_name(0, "run");
  a.set_track_name(0, 0, "clusters (kernel)");
  a.add({"kernel k", "kernel", 0, 0, 0, 100});
  b.set_process_name(0, "run");             // same key: must not duplicate
  b.set_track_name(0, 0, "clusters (kernel)");
  b.set_track_name(0, 1, "memory (SDR 0)");
  b.add({"load s0", "memory", 0, 1, 50, 80});
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  int n_meta = 0;
  const Json doc = a.chrome_json();
  for (const Json& e : doc.at("traceEvents").elements()) {
    if (e.at("ph").as_string() == "M") ++n_meta;
  }
  EXPECT_EQ(n_meta, 3);  // one process_name + two thread_names, no dupes
}

// Parallel tuner workers each trace into a private sink while their
// counters go through a ScopedRegistryRedirect shard; folding the shards
// into the process sink afterwards must land every worker's events exactly
// once, whatever the merge order. Run under the `tsan` preset to prove the
// shards really are thread-confined.
TEST(TraceSink, WorkerShardEventsLandExactlyOnceAfterMerge) {
  constexpr int kThreads = 4, kEvents = 50;
  std::vector<TraceSink> sinks(kThreads);
  std::vector<CounterRegistry> regs(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&sinks, &regs, t] {
      ScopedRegistryRedirect redirect(regs[static_cast<std::size_t>(t)]);
      TraceSink& sink = sinks[static_cast<std::size_t>(t)];
      sink.set_process_name(t, "worker " + std::to_string(t));
      for (int i = 0; i < kEvents; ++i) {
        sink.add({"ev " + std::to_string(t) + "." + std::to_string(i),
                  "kernel", t, 0, static_cast<std::uint64_t>(i) * 10, 10});
        CounterRegistry::global().add("trace.events");
      }
    });
  }
  for (auto& th : pool) th.join();

  TraceSink forward, backward;
  CounterRegistry counters;
  for (int t = 0; t < kThreads; ++t) {
    forward.merge(sinks[static_cast<std::size_t>(t)]);
    backward.merge(sinks[static_cast<std::size_t>(kThreads - 1 - t)]);
    counters.merge(regs[static_cast<std::size_t>(t)]);
  }
  ASSERT_EQ(forward.size(), kThreads * kEvents);
  ASSERT_EQ(backward.size(), kThreads * kEvents);
  // The sinks and the counter shards agree on the event count.
  EXPECT_EQ(counters.counter("trace.events"),
            static_cast<std::int64_t>(forward.size()));
  // Every (name) is distinct, so exactly-once is checkable by uniqueness.
  std::vector<std::string> names;
  for (const TraceEvent& e : forward.events()) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  // Merge order changes event interleaving but not the slice multiset:
  // both orders serialize the same number of slices and metadata records.
  EXPECT_EQ(forward.chrome_json().at("traceEvents").size(),
            backward.chrome_json().at("traceEvents").size());
}

// Timer snapshot consistency under concurrency: add_seconds updates the
// `<name>.seconds` gauge and the `<name>.calls` counter under one lock,
// so any snapshot (to_json takes the same lock) observes them in
// agreement -- calls x 1.0s each means the two values are equal at every
// instant. The svc server's per-phase timers rely on this.
TEST(Registry, ThreadedTimerSnapshotsAreConsistent) {
  CounterRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kAddsPerWriter = 400;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&reg] {
      for (int i = 0; i < kAddsPerWriter; ++i) {
        reg.add_seconds("svc.phase.test", 1.0);
      }
    });
  }
  int snapshots = 0;
  while (reg.counter("svc.phase.test.calls") < kWriters * kAddsPerWriter) {
    const Json snap = reg.to_json();
    const Json* calls = snap.at("counters").find("svc.phase.test.calls");
    const Json* secs = snap.at("gauges").find("svc.phase.test.seconds");
    const std::int64_t n = calls == nullptr ? 0 : calls->as_int();
    const double s = secs == nullptr ? 0.0 : secs->as_double();
    EXPECT_DOUBLE_EQ(s, static_cast<double>(n))
        << "snapshot " << snapshots << " tore a timer update apart";
    ++snapshots;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(reg.counter("svc.phase.test.calls"), kWriters * kAddsPerWriter);
  EXPECT_DOUBLE_EQ(reg.gauge("svc.phase.test.seconds"),
                   static_cast<double>(kWriters * kAddsPerWriter));
}

TEST(TraceSink, WriteProducesLoadableFile) {
  TraceSink sink;
  sink.add({"op", "memory", 0, 1, 0, 10});
  const std::string path = testing::TempDir() + "/obs_test_trace.json";
  sink.write(path);
  const Json doc = load_file(path);
  EXPECT_EQ(doc.at("traceEvents").size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smd::obs
