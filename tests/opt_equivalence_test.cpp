// Verified-optimizer equivalence sweep: the hard gate behind kernel/opt.h.
//
// The optimizer is only allowed to exist because its output is bit-
// identical to its input in every observable way. This suite enforces
// that claim at two levels:
//
//   * full simulation -- every Table-3 variant kernel plus the
//     deliberately naive expanded kernel runs a complete strip-mined
//     water-box time-step under SimEngine::kLockstep (which itself
//     cross-checks the stepped and event engines), baseline vs. optimized,
//     under BOTH SDR blocking policies. The final memory image (forces)
//     must match word-for-word by bit pattern, and the structural run
//     statistics (memory traffic, SRF traffic, iteration counts) must be
//     unchanged. When the optimizer made zero rewrites the entire RunStats
//     must match field-by-field.
//   * functional interpretation -- kernels with no stream-program builder
//     (energy, multi-site, blocked) run through the interpreter on
//     randomized inputs, baseline vs. optimized, comparing every output
//     word by bit pattern.
//
// Plus the acceptance claims of the dataflow engine itself: static peak
// LRF pressure equals the dynamic replay oracle on every built-in kernel,
// and the naive kernel collapses to the tuned kernel's scheduled cost.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/analysis/verify_ir.h"
#include "src/core/kernels.h"
#include "src/core/program.h"
#include "src/core/run.h"
#include "src/core/streammd.h"
#include "src/kernel/interp.h"
#include "src/kernel/opt.h"
#include "src/kernel/schedule.h"
#include "src/md/water.h"
#include "src/sim/config.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace smd {
namespace {

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

/// One full strip-mined simulation of `v`'s layout with an explicit kernel
/// definition (run_variant always builds its own; the sweep needs to
/// substitute the optimized twin).
struct SimOut {
  sim::RunStats run;
  std::vector<double> mem;
};

SimOut simulate(const core::Problem& problem, core::Variant v,
                const kernel::KernelDef& kdef, const sim::MachineConfig& cfg) {
  core::LayoutOptions lopts;
  lopts.n_clusters = cfg.n_clusters;
  lopts.fixed_list_length = problem.setup.fixed_list_length;
  lopts.strip_rounds = problem.setup.strip_rounds;
  lopts.srf_words = cfg.srf_words;
  const core::VariantLayout layout =
      core::build_layout(v, problem.system, problem.half_list, lopts);
  sim::Machine machine(cfg);
  const core::ProblemImage image =
      core::upload_system(machine.memory(), problem.system);
  const sim::StreamProgram program =
      core::build_program(machine.memory(), image, layout, kdef);
  SimOut out;
  out.run = machine.run(program);
  out.mem.resize(static_cast<std::size_t>(machine.memory().size()));
  for (std::int64_t w = 0; w < machine.memory().size(); ++w) {
    out.mem[static_cast<std::size_t>(w)] =
        machine.memory().read(static_cast<std::uint64_t>(w));
  }
  return out;
}

/// The parts of RunStats the optimizer must never change: stream traffic
/// and iteration structure. (Cycle counts and flop tallies legitimately
/// shrink when instructions are removed.)
void expect_structural_match(const sim::RunStats& a, const sim::RunStats& b,
                             const std::string& what) {
  EXPECT_EQ(a.mem_words, b.mem_words) << what;
  EXPECT_EQ(a.interp.srf_read_words, b.interp.srf_read_words) << what;
  EXPECT_EQ(a.interp.srf_write_words, b.interp.srf_write_words) << what;
  EXPECT_EQ(a.interp.cond_accesses, b.interp.cond_accesses) << what;
  EXPECT_EQ(a.interp.cond_taken, b.interp.cond_taken) << what;
  EXPECT_EQ(a.interp.body_iterations, b.interp.body_iterations) << what;
}

// The tentpole gate: Table-3 variants + the naive kernel, both SDR
// policies, full lockstep simulation, bitwise-identical memory images.
TEST(OptEquivalence, LockstepSweepTableThreeVariantsBothPolicies) {
  core::ExperimentSetup setup;
  setup.n_molecules = 48;
  const core::Problem problem = core::Problem::make(setup);

  struct Case {
    core::Variant variant;
    kernel::KernelDef def;
  };
  std::vector<Case> cases;
  for (const core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    cases.push_back({v, core::build_water_kernel(v, problem.system.model())});
  }
  // The naive kernel shares the expanded stream interface, so it runs the
  // expanded layout; this is the case where the optimizer rewrites a lot.
  cases.push_back({core::Variant::kExpanded,
                   core::build_expanded_naive_kernel(problem.system.model())});

  for (const Case& c : cases) {
    kernel::OptReport rep;
    const kernel::KernelDef opt = kernel::optimize_kernel(c.def, &rep);
    for (const sim::SdrPolicy policy :
         {sim::SdrPolicy::kConservative, sim::SdrPolicy::kTransferScoped}) {
      sim::MachineConfig cfg = sim::MachineConfig::merrimac();
      cfg.engine = sim::SimEngine::kLockstep;
      cfg.sdr_policy = policy;
      const std::string what =
          c.def.name + (policy == sim::SdrPolicy::kConservative
                            ? " [conservative]"
                            : " [transfer-scoped]");

      const SimOut base = simulate(problem, c.variant, c.def, cfg);
      const SimOut tuned = simulate(problem, c.variant, opt, cfg);

      if (rep.total_rewrites() == 0) {
        EXPECT_EQ(sim::diff_run_stats(base.run, tuned.run), "") << what;
      }
      expect_structural_match(base.run, tuned.run, what);
      ASSERT_EQ(base.mem.size(), tuned.mem.size()) << what;
      for (std::size_t w = 0; w < base.mem.size(); ++w) {
        ASSERT_EQ(bits_of(base.mem[w]), bits_of(tuned.mem[w]))
            << what << " memory word " << w;
      }
    }
  }
}

/// Interpreter-level bit identity for kernels without a stream-program
/// builder. Inputs are randomized; outputs must match by bit pattern.
void expect_interp_bit_identical(const kernel::KernelDef& base,
                                 const kernel::KernelDef& opt,
                                 std::uint64_t seed) {
  constexpr int kClusters = 4;
  constexpr std::int64_t kRounds = 3;
  util::Rng rng(seed);

  // Generous input sizing: every section of every cluster could take every
  // conditional access on every iteration.
  const std::int64_t accesses_per_stream =
      kRounds * (base.block_len + 2) * kClusters;
  // Input data keyed by stream NAME so both runs see identical words even
  // when dead-stream elimination removed a slot and renumbered the rest.
  std::map<std::string, std::vector<double>> input_store;
  auto run_one = [&](const kernel::KernelDef& def) {
    kernel::StreamBindings b;
    std::vector<std::vector<double>> outs(def.streams.size());
    for (std::size_t s = 0; s < def.streams.size(); ++s) {
      if (def.streams[s].dir == kernel::StreamDir::kIn) {
        auto [it, fresh] = input_store.try_emplace(def.streams[s].name);
        if (fresh) {
          it->second.resize(static_cast<std::size_t>(
              accesses_per_stream * def.streams[s].record_words));
          for (double& d : it->second) d = rng.uniform(-2.0, 2.0);
        }
        b.inputs.emplace_back(it->second);
        b.outputs.push_back(nullptr);
      } else {
        b.inputs.emplace_back();
        b.outputs.push_back(&outs[s]);
      }
    }
    kernel::Interpreter interp(def, kClusters);
    interp.run(b, kRounds);
    return outs;
  };

  const auto base_out = run_one(base);
  const auto opt_out = run_one(opt);
  // Dead-stream elimination may shrink the slot count; compare the
  // surviving outputs by name.
  for (std::size_t so = 0; so < opt.streams.size(); ++so) {
    if (opt.streams[so].dir != kernel::StreamDir::kOut) continue;
    std::size_t sb = 0;
    while (sb < base.streams.size() &&
           base.streams[sb].name != opt.streams[so].name) {
      ++sb;
    }
    ASSERT_LT(sb, base.streams.size()) << opt.streams[so].name;
    ASSERT_EQ(base_out[sb].size(), opt_out[so].size()) << base.name;
    for (std::size_t w = 0; w < base_out[sb].size(); ++w) {
      ASSERT_EQ(bits_of(base_out[sb][w]), bits_of(opt_out[so][w]))
          << base.name << " stream " << opt.streams[so].name << " word " << w;
    }
  }
}

TEST(OptEquivalence, InterpSweepKernelsWithoutProgramBuilders) {
  const md::WaterModel model = md::spc();
  std::vector<kernel::KernelDef> defs;
  defs.push_back(core::build_expanded_energy_kernel(model));
  for (const md::WaterModel& m : {md::spc(), md::tip5p(), md::ppc()}) {
    defs.push_back(core::build_multisite_kernel(m));
  }
  defs.push_back(core::build_blocked_kernel(model, 1.0, 8));
  std::uint64_t seed = 0x5eed;
  for (const kernel::KernelDef& def : defs) {
    const kernel::KernelDef opt = kernel::optimize_kernel(def);
    expect_interp_bit_identical(def, opt, seed++);
  }
}

// Acceptance: the naive kernel collapses to the tuned expanded kernel's
// scheduled cost, with every pass contributing.
TEST(OptEquivalence, NaiveKernelCollapsesToTunedCost) {
  const md::WaterModel model = md::spc();
  kernel::OptReport rep;
  const kernel::KernelDef opt =
      kernel::optimize_kernel(core::build_expanded_naive_kernel(model), &rep);
  EXPECT_GT(rep.const_folded, 0);
  EXPECT_GT(rep.copies_propagated, 0);
  EXPECT_GT(rep.cse_replaced, 0);
  EXPECT_GT(rep.dce_removed, 0);
  EXPECT_FALSE(rep.reverted_schedule_regression);

  const kernel::KernelDef tuned =
      core::build_water_kernel(core::Variant::kExpanded, model);
  const kernel::ScheduleOptions sched;
  EXPECT_DOUBLE_EQ(kernel::schedule_body(opt, sched).cycles_per_iteration(),
                   kernel::schedule_body(tuned, sched).cycles_per_iteration());

  // And it re-verifies with zero errors (warnings allowed: the optimizer
  // does not reorder packing movs, so pressure-style lints may remain).
  EXPECT_EQ(analysis::verify_kernel(opt).errors(), 0);
}

// Acceptance: exact static pressure == dynamic replay oracle, every
// built-in kernel (same sweep smdcheck --dataflow gates on).
TEST(OptEquivalence, StaticPressureMatchesDynamicReplay) {
  const md::WaterModel model = md::spc();
  std::vector<kernel::KernelDef> defs;
  for (const core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    defs.push_back(core::build_water_kernel(v, model));
  }
  defs.push_back(core::build_expanded_energy_kernel(model));
  for (const md::WaterModel& m : {md::spc(), md::tip5p(), md::ppc()}) {
    defs.push_back(core::build_multisite_kernel(m));
  }
  defs.push_back(core::build_blocked_kernel(model, 1.0, 64));
  defs.push_back(core::build_expanded_naive_kernel(model));
  for (const kernel::KernelDef& def : defs) {
    const analysis::KernelDataflow dfa(def);
    EXPECT_EQ(dfa.max_live_pressure(), analysis::dynamic_lrf_pressure(def))
        << def.name;
  }
}

// Randomized property: for arbitrary generated kernels -- carrying
// deliberate dead code, duplicate expressions, foldable constants and
// wholly-unused streams -- the optimizer's output always (a) re-verifies
// with zero errors AND zero warnings, (b) is interpreter-bit-identical,
// and (c) never schedules to more cycles/iteration than the input.
TEST(OptEquivalence, RandomKernelsOptimizeCleanAndBitIdentical) {
  for (int trial = 0; trial < 60; ++trial) {
    util::Rng rng(0xbeefULL + 131ULL * static_cast<std::uint64_t>(trial));
    kernel::KernelBuilder kb("random_" + std::to_string(trial));
    const int n_in = 1 + static_cast<int>(rng.uniform_u64(3));
    const int n_out = 1 + static_cast<int>(rng.uniform_u64(2));
    std::vector<int> ins, outs;
    for (int i = 0; i < n_in; ++i) {
      ins.push_back(kb.stream_in("in" + std::to_string(i), 1));
    }
    for (int i = 0; i < n_out; ++i) {
      outs.push_back(kb.stream_out("out" + std::to_string(i), 1));
    }
    using Reg = kernel::KernelBuilder::Reg;
    std::vector<Reg> vals;
    kb.section(kernel::Section::kPrologue);
    // A couple of constants; arithmetic on them is folding fodder.
    vals.push_back(kb.constant(rng.uniform(0.5, 2.0)));
    vals.push_back(kb.add(vals[0], kb.constant(1.0)));
    kb.section(kernel::Section::kBody);
    // With some probability the LAST input's words are never consumed:
    // dead-stream-elimination fodder (all-or-nothing per stream, so the
    // cursor never desyncs).
    const bool drop_last_in = n_in > 1 && rng.uniform_u64(3) == 0;
    for (int i = 0; i < n_in; ++i) {
      const auto r = kb.read(ins[static_cast<std::size_t>(i)], 1);
      if (i + 1 < n_in || !drop_last_in) vals.push_back(r[0]);
    }
    const int n_ops = 3 + static_cast<int>(rng.uniform_u64(12));
    std::vector<std::pair<Reg, Reg>> emitted;  // duplicate-emission fodder
    for (int i = 0; i < n_ops; ++i) {
      const Reg a = vals[rng.uniform_u64(vals.size())];
      const Reg b = vals[rng.uniform_u64(vals.size())];
      Reg r;
      switch (rng.uniform_u64(5)) {
        case 0: r = kb.add(a, b); break;
        case 1: r = kb.sub(a, b); break;
        case 2: r = kb.mul(a, b); break;
        case 3: r = kb.madd(a, b, vals[rng.uniform_u64(vals.size())]); break;
        default:
          // Exact duplicate of an earlier op: CSE fodder.
          if (!emitted.empty()) {
            const auto& e = emitted[rng.uniform_u64(emitted.size())];
            r = kb.mul(e.first, e.second);
          } else {
            r = kb.mul(a, b);
          }
          break;
      }
      emitted.emplace_back(a, b);
      vals.push_back(r);  // unconsumed tail values are DCE fodder
    }
    for (int i = 0; i < n_out; ++i) {
      kb.write(outs[static_cast<std::size_t>(i)],
               vals[vals.size() - 1 - static_cast<std::size_t>(i)], 1);
    }
    const kernel::KernelDef def = kb.build();

    kernel::OptReport rep;
    const kernel::KernelDef opt = kernel::optimize_kernel(def, &rep);
    const analysis::Diagnostics d = analysis::verify_kernel(opt);
    EXPECT_EQ(d.errors(), 0) << def.name << "\n" << d.format();
    EXPECT_EQ(d.warnings(), 0) << def.name << "\n" << d.format();
    EXPECT_FALSE(rep.reverted_schedule_regression) << def.name;
    EXPECT_LE(rep.cycles_per_iteration_after, rep.cycles_per_iteration_before)
        << def.name;
    expect_interp_bit_identical(def, opt, 0xf00dULL + trial);
  }
}

// Dead-stream elimination: an input stream whose every read lands in
// registers nobody consumes disappears entirely -- reads, declaration and
// slot renumbering -- and the surviving outputs are bit-identical.
TEST(OptEquivalence, DeadStreamEliminationDropsWholeStream) {
  kernel::KernelBuilder kb("dead_stream_demo");
  const int s_x = kb.stream_in("x", 2);
  const int s_junk = kb.stream_in("junk", 3);
  const int s_y = kb.stream_out("y", 1);
  kb.section(kernel::Section::kBody);
  const auto x = kb.read(s_x, 2);
  const auto j = kb.read(s_junk, 3);
  (void)j;  // never consumed
  kb.write(s_y, kb.madd(x[0], x[0], x[1]), 1);
  const kernel::KernelDef def = kb.build();

  kernel::OptReport rep;
  const kernel::KernelDef opt = kernel::optimize_kernel(def, &rep);
  EXPECT_EQ(rep.dead_streams_removed, 1);
  EXPECT_EQ(rep.dead_stream_reads_removed, 1);
  ASSERT_EQ(opt.streams.size(), 2u);
  EXPECT_EQ(opt.streams[0].name, "x");
  EXPECT_EQ(opt.streams[1].name, "y");
  expect_interp_bit_identical(def, opt, 0xdead);
}

}  // namespace
}  // namespace smd
