// Tests for the smdprof layers: stall-taxonomy attribution (the
// sum-to-total invariant above all), roofline placement, and the
// benchmark-regression baseline harness.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/run.h"
#include "src/net/multinode.h"
#include "src/prof/attribution.h"
#include "src/prof/baseline.h"
#include "src/prof/parallel.h"
#include "src/prof/roofline.h"
#include "src/util/rng.h"

namespace smd::prof {
namespace {

// ---- Attribution. ---------------------------------------------------------

TEST(Attribution, EmptyWindowIsAllScheduleDrain) {
  sim::Timeline tl;
  const StallTaxonomy t = attribute_window(tl, 0, 100);
  EXPECT_EQ(t.total_cycles, 100u);
  EXPECT_EQ(t.schedule_drain, 100u);
  EXPECT_TRUE(t.exhaustive());
}

TEST(Attribution, PriorityRulesClassifyHandBuiltTimeline) {
  // [0,10) kernel only; [10,20) kernel+memory; [20,30) memory only;
  // [30,40) memory labelled scatter-add; [40,50) SDR stall only;
  // [50,60) nothing.
  sim::Timeline tl;
  tl.add(sim::Lane::kKernel, 0, 20, "kernel k");
  tl.add(sim::Lane::kMemory, 10, 30, "load s0");
  tl.add(sim::Lane::kMemory, 30, 40, "scatter-add s1", 1);
  tl.add(sim::Lane::kStall, 40, 50, "sdr-stall");
  const StallTaxonomy t = attribute_window(tl, 0, 60);
  EXPECT_EQ(t.kernel_busy, 10u);
  EXPECT_EQ(t.overlap, 10u);
  EXPECT_EQ(t.memory_exposed, 10u);
  EXPECT_EQ(t.scatter_serialization, 10u);
  EXPECT_EQ(t.sdr_stall, 10u);
  EXPECT_EQ(t.schedule_drain, 10u);
  EXPECT_TRUE(t.exhaustive());
}

TEST(Attribution, OverlapOutranksScatterSerialization) {
  // A scatter-add drain fully hidden under a kernel is overlap, not
  // serialization: the drain cost the run nothing.
  sim::Timeline tl;
  tl.add(sim::Lane::kKernel, 0, 100, "kernel k");
  tl.add(sim::Lane::kMemory, 20, 60, "scatter-add s0");
  const StallTaxonomy t = attribute_window(tl, 0, 100);
  EXPECT_EQ(t.overlap, 40u);
  EXPECT_EQ(t.scatter_serialization, 0u);
  EXPECT_EQ(t.kernel_busy, 60u);
  EXPECT_TRUE(t.exhaustive());
}

TEST(Attribution, StallHiddenUnderMemoryCountsAsMemory) {
  // An SDR stall while another transfer is draining is attributed to the
  // memory bucket (rules 2-3 outrank rule 4): the machine was making
  // memory progress, the stall was not the exposed cost.
  sim::Timeline tl;
  tl.add(sim::Lane::kMemory, 0, 50, "load s0");
  tl.add(sim::Lane::kStall, 10, 70, "sdr-stall");
  const StallTaxonomy t = attribute_window(tl, 0, 80);
  EXPECT_EQ(t.memory_exposed, 50u);
  EXPECT_EQ(t.sdr_stall, 20u);  // only the [50,70) exposed part
  EXPECT_EQ(t.schedule_drain, 10u);
  EXPECT_TRUE(t.exhaustive());
}

TEST(AttributionProperty, RandomSoupsAlwaysSumToTotal) {
  util::Rng rng(0x9f0fu);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t horizon = 1 + rng.uniform_u64(400);
    sim::Timeline tl;
    const int n = static_cast<int>(rng.uniform_u64(30));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t a = rng.uniform_u64(2 * horizon);
      const std::uint64_t b = rng.uniform_u64(2 * horizon);
      const std::uint64_t lane_pick = rng.uniform_u64(4);
      const sim::Lane lane = lane_pick == 0   ? sim::Lane::kKernel
                             : lane_pick == 1 ? sim::Lane::kStall
                                              : sim::Lane::kMemory;
      const char* label = lane == sim::Lane::kMemory && rng.uniform_u64(2)
                              ? "scatter-add s0"
                              : "load s0";
      tl.add(lane, std::min(a, b), std::max(a, b), label);
    }
    const StallTaxonomy t = attribute_window(tl, 0, horizon);
    EXPECT_EQ(t.total_cycles, horizon) << "trial " << trial;
    EXPECT_TRUE(t.exhaustive())
        << "trial " << trial << ": sum " << t.sum() << " != " << horizon;
    // Cross-check two buckets against Timeline's own occupancy queries.
    EXPECT_EQ(t.overlap, tl.overlap_cycles(horizon)) << "trial " << trial;
    const std::uint64_t mem_total =
        t.overlap + t.memory_exposed + t.scatter_serialization;
    EXPECT_EQ(mem_total, tl.busy_cycles(sim::Lane::kMemory, horizon))
        << "trial " << trial;
  }
}

TEST(Attribution, StripWindowsTileTheRunExactly) {
  sim::RunStats stats;
  stats.cycles = 300;
  stats.timeline.add(sim::Lane::kKernel, 50, 100, "kernel a");
  stats.timeline.add(sim::Lane::kKernel, 150, 220, "kernel a");
  stats.timeline.add(sim::Lane::kMemory, 0, 160, "load s0");
  const auto strips = strip_attribution(stats);
  ASSERT_EQ(strips.size(), 2u);
  EXPECT_EQ(strips[0].lo, 0u);  // priming window joins the first strip
  EXPECT_EQ(strips[0].hi, 150u);
  EXPECT_EQ(strips[1].hi, 300u);
  StallTaxonomy sum;
  for (const auto& s : strips) sum += s.taxonomy;
  EXPECT_EQ(sum.total_cycles, stats.cycles);
  EXPECT_TRUE(sum.exhaustive());
  const StallTaxonomy whole = attribute_cycles(stats);
  EXPECT_EQ(sum.kernel_busy, whole.kernel_busy);
  EXPECT_EQ(sum.overlap, whole.overlap);
  EXPECT_EQ(sum.memory_exposed, whole.memory_exposed);
  EXPECT_EQ(sum.schedule_drain, whole.schedule_drain);
}

TEST(Attribution, KernelSlicesGroupByLabel) {
  sim::Timeline tl;
  tl.add(sim::Lane::kKernel, 0, 10, "kernel a");
  tl.add(sim::Lane::kKernel, 20, 40, "kernel b");
  tl.add(sim::Lane::kKernel, 50, 55, "kernel a");
  const auto slices = kernel_slices(tl, 100);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].label, "kernel b");  // sorted by busy desc
  EXPECT_EQ(slices[0].busy_cycles, 20u);
  EXPECT_EQ(slices[1].launches, 2);
  EXPECT_EQ(slices[1].busy_cycles, 15u);
}

// ---- Roofline. ------------------------------------------------------------

TEST(Roofline, PaperLrfFractionsMatchFigure8) {
  EXPECT_DOUBLE_EQ(paper_lrf_fraction(core::Variant::kExpanded), 0.89);
  EXPECT_DOUBLE_EQ(paper_lrf_fraction(core::Variant::kFixed), 0.93);
  EXPECT_DOUBLE_EQ(paper_lrf_fraction(core::Variant::kVariable), 0.95);
  EXPECT_DOUBLE_EQ(paper_lrf_fraction(core::Variant::kDuplicated), 0.96);
}

TEST(Roofline, BindingVerdictFollowsBusySplit) {
  EXPECT_STREQ(binding_verdict(100, 50), "compute");
  EXPECT_STREQ(binding_verdict(50, 100), "memory");
}

TEST(Roofline, PointUsesMachinePeaksAndTable4Ai) {
  core::VariantResult r;
  r.variant = core::Variant::kFixed;
  r.name = "fixed";
  r.ai_measured = 9.3;  // Table 4
  r.solution_gflops = 22.0;
  r.lrf_fraction = 0.93;
  r.run.kernel_busy_cycles = 600;
  r.run.mem_busy_cycles = 500;
  const RooflinePoint p =
      roofline_point(r, sim::MachineConfig::merrimac());
  EXPECT_DOUBLE_EQ(p.peak_gflops, 128.0);
  EXPECT_NEAR(p.dram_bw_gbps, 38.4, 1e-9);
  // 9.3 flops/word over 4.8 Gwords/s ~= 44.6 GFLOPS bandwidth roof.
  EXPECT_NEAR(p.dram_bound_gflops, 9.3 / 8.0 * 38.4, 1e-9);
  EXPECT_EQ(p.model_binding, "memory");
  EXPECT_EQ(p.measured_binding, "compute");
  EXPECT_NEAR(p.fraction_of_roofline, 22.0 / (9.3 / 8.0 * 38.4), 1e-12);
}

// ---- Parallel taxonomy (multi-node decomposition). ------------------------

TEST(ParallelTaxonomy, FoldsLedgersIntoFourBuckets) {
  const net::ScalingModel model(net::ScalingWorkload{}, net::NetworkConfig{});
  const net::StepBreakdown b = model.breakdown(8);
  const ParallelTaxonomy t = attribute_parallel(b);
  EXPECT_EQ(t.nodes, 8);
  EXPECT_EQ(t.total_node_ns, 8u * b.step_ns);
  EXPECT_TRUE(t.exhaustive());
  EXPECT_GT(t.compute_ns, 0u);
  EXPECT_GT(t.communication_ns, 0u);
  const double shares = t.parallel_efficiency() +
                        t.communication_fraction() +
                        t.serialization_fraction() + t.imbalance_fraction();
  EXPECT_NEAR(shares, 1.0, 1e-12);
}

TEST(ParallelTaxonomyProperty, RandomWorkloadsAlwaysSumToTotal) {
  // The parallel mirror of the 200-soup stall-taxonomy test: whatever the
  // workload and node count, the four node-time buckets sum *exactly* to
  // nodes x step makespan -- no tolerance.
  util::Rng rng(0xb00du);
  const net::NetworkConfig cfg;
  const net::Topology topo{cfg};
  for (int trial = 0; trial < 200; ++trial) {
    net::ScalingWorkload w;
    w.n_molecules = static_cast<std::int64_t>(rng.uniform_u64(200000));
    w.cutoff = rng.uniform(0.2, 2.5);
    w.number_density = rng.uniform(1.0, 60.0);
    w.cycles_per_interaction = rng.uniform(0.5, 16.0);
    w.words_per_interaction = rng.uniform(1.0, 40.0);
    w.load_jitter = rng.uniform(0.0, 0.4);
    w.seed = rng.next_u64();
    const std::int64_t nodes =
        1 + static_cast<std::int64_t>(rng.uniform_u64(512));
    const net::StepBreakdown b = net::simulate_step(w, topo, nodes);
    const ParallelTaxonomy t = attribute_parallel(b);
    EXPECT_EQ(t.total_node_ns,
              static_cast<std::uint64_t>(nodes) * b.step_ns)
        << "trial " << trial;
    EXPECT_TRUE(t.exhaustive())
        << "trial " << trial << ": P=" << nodes << " sum " << t.sum()
        << " != " << t.total_node_ns;
    // Every ledger tiles the step, so the per-node invariant implies the
    // aggregate one; check both to localize failures.
    for (const auto& ledger : b.ledgers) {
      ASSERT_EQ(ledger.total_ns(), b.step_ns)
          << "trial " << trial << " node " << ledger.node;
    }
    EXPECT_GE(t.parallel_efficiency(), 0.0);
    EXPECT_LE(t.parallel_efficiency(), 1.0);
  }
}

// ---- Baseline harness. ----------------------------------------------------

core::VariantResult small_result(core::Variant v, double cycles) {
  core::VariantResult r;
  r.variant = v;
  r.name = core::variant_name(v);
  r.run.cycles = static_cast<std::uint64_t>(cycles);
  r.run.kernel_busy_cycles = static_cast<std::uint64_t>(cycles * 0.6);
  r.run.mem_busy_cycles = static_cast<std::uint64_t>(cycles * 0.5);
  r.time_ms = cycles / 1e6;
  r.solution_gflops = 20.0;
  r.ai_measured = 9.0;
  r.lrf_fraction = 0.93;
  return r;
}

TEST(Baseline, RoundTripsThroughJson) {
  const core::ExperimentSetup setup;
  const sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  const Baseline b = Baseline::capture(
      {small_result(core::Variant::kFixed, 1e5)}, setup, cfg);
  const Baseline back = Baseline::from_json(obs::Json::parse(b.to_json().dump(2)));
  EXPECT_EQ(back.schema_version, kBaselineSchemaVersion);
  EXPECT_EQ(back.n_molecules, setup.n_molecules);
  EXPECT_EQ(back.seed, setup.seed);
  ASSERT_EQ(back.variants.size(), 1u);
  EXPECT_EQ(back.variants[0].variant, "fixed");
  EXPECT_EQ(back.variants[0].metrics.size(), b.variants[0].metrics.size());
  // Ordered identically -- the file is diffable.
  for (std::size_t i = 0; i < back.variants[0].metrics.size(); ++i) {
    EXPECT_EQ(back.variants[0].metrics[i].name,
              b.variants[0].metrics[i].name);
  }
}

TEST(Baseline, RejectsUnknownSchemaVersion) {
  const core::ExperimentSetup setup;
  obs::Json j = Baseline::capture({}, setup, sim::MachineConfig::merrimac())
                    .to_json();
  j.set("schema_version", kBaselineSchemaVersion + 1);
  EXPECT_THROW(Baseline::from_json(j), std::runtime_error);
}

TEST(Baseline, IdenticalCapturesCompareClean) {
  const core::ExperimentSetup setup;
  const sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  const auto results = {small_result(core::Variant::kFixed, 1e5),
                        small_result(core::Variant::kVariable, 8e4)};
  const Baseline a = Baseline::capture(results, setup, cfg);
  const Baseline b = Baseline::capture(results, setup, cfg);
  const CompareReport rep = compare(a, b);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.regressions().empty());
  EXPECT_FALSE(rep.deltas.empty());
}

TEST(Baseline, CycleRegressionBeyondToleranceFails) {
  const core::ExperimentSetup setup;
  const sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  const Baseline base = Baseline::capture(
      {small_result(core::Variant::kFixed, 1e5)}, setup, cfg);
  // 10% more cycles: beyond the 5% tolerance on `cycles` and `time_ms`.
  const Baseline worse = Baseline::capture(
      {small_result(core::Variant::kFixed, 1.1e5)}, setup, cfg);
  const CompareReport rep = compare(base, worse);
  EXPECT_FALSE(rep.ok());
  bool cycles_flagged = false;
  for (const auto& d : rep.regressions()) {
    if (d.metric == "cycles") cycles_flagged = true;
  }
  EXPECT_TRUE(cycles_flagged);
  // The mirror comparison is an improvement, which must NOT fail.
  const CompareReport mirror = compare(worse, base);
  EXPECT_TRUE(mirror.ok());
  EXPECT_FALSE(mirror.improvements().empty());
}

TEST(Baseline, SmallStallBucketJitterToleratedViaAbsFloor) {
  const MetricPolicy pol = policy_for("sdr_stall_cycles");
  EXPECT_GT(pol.abs_floor, 0.0);
  // 0 -> 50 stall cycles is inside the absolute floor: no regression.
  Baseline a, b;
  a.variants.push_back({"fixed", {{"sdr_stall_cycles", 0.0}}});
  b.variants.push_back({"fixed", {{"sdr_stall_cycles", 50.0}}});
  EXPECT_TRUE(compare(a, b).ok());
  // 0 -> 500 is past the floor: regression.
  b.variants[0].metrics[0].value = 500.0;
  EXPECT_FALSE(compare(a, b).ok());
}

TEST(Baseline, MissingMetricOrVariantIsANoteAndFailsOk) {
  Baseline base, cur;
  base.variants.push_back({"fixed", {{"cycles", 100.0}, {"mem_words", 5.0}}});
  cur.variants.push_back({"fixed", {{"cycles", 100.0}}});
  const CompareReport rep = compare(base, cur);
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.notes.size(), 1u);
  EXPECT_NE(rep.notes[0].find("mem_words"), std::string::npos);
  // A metric only in `cur` is ignored (enters on the next refresh).
  const CompareReport rev = compare(cur, base);
  EXPECT_TRUE(rev.ok());
}

TEST(Baseline, SetupMismatchIsANote) {
  Baseline a, b;
  a.n_molecules = 900;
  b.n_molecules = 256;
  EXPECT_FALSE(compare(a, b).ok());
}

TEST(Baseline, ScalingSectionRoundTripsThroughJson) {
  const net::ScalingModel model(net::ScalingWorkload{}, net::NetworkConfig{});
  Baseline b = Baseline::capture({}, core::ExperimentSetup{},
                                 sim::MachineConfig::merrimac());
  b.capture_scaling({model.breakdown(1), model.breakdown(8)});
  ASSERT_EQ(b.scaling.size(), 2u);
  EXPECT_EQ(b.scaling[1].variant, "p=8");
  const Baseline back =
      Baseline::from_json(obs::Json::parse(b.to_json().dump(2)));
  ASSERT_EQ(back.scaling.size(), 2u);
  EXPECT_EQ(back.scaling[0].variant, "p=1");
  EXPECT_EQ(back.scaling[1].metrics.size(), b.scaling[1].metrics.size());
  EXPECT_TRUE(compare(b, back).ok());
}

TEST(Baseline, SchemaV1FilesStillLoadWithEmptyScaling) {
  Baseline b = Baseline::capture({small_result(core::Variant::kFixed, 1e5)},
                                 core::ExperimentSetup{},
                                 sim::MachineConfig::merrimac());
  obs::Json j = b.to_json();
  j.set("schema_version", 1);
  // A v1 writer would not have emitted the key at all; dropping it via a
  // fresh object without "scaling" exercises the same path as find()
  // returning null.
  obs::Json v1 = obs::Json::object();
  for (const auto& [key, value] : j.items()) {
    if (key != "scaling") v1.set(key, value);
  }
  const Baseline back = Baseline::from_json(v1);
  EXPECT_EQ(back.schema_version, 1);
  EXPECT_TRUE(back.scaling.empty());
  ASSERT_EQ(back.variants.size(), 1u);
}

TEST(Baseline, ScalingRegressionFailsTheGate) {
  const net::ScalingModel model(net::ScalingWorkload{}, net::NetworkConfig{});
  Baseline base, cur;
  base.capture_scaling({model.breakdown(8)});
  cur.capture_scaling({model.breakdown(8)});
  EXPECT_TRUE(compare(base, cur).ok());
  // A 10% longer step is past the 5% step_ns tolerance.
  for (auto& m : cur.scaling[0].metrics) {
    if (m.name == "step_ns") m.value *= 1.10;
  }
  const CompareReport rep = compare(base, cur);
  EXPECT_FALSE(rep.ok());
  bool step_flagged = false;
  for (const auto& d : rep.regressions()) {
    if (d.variant == "p=8" && d.metric == "step_ns") step_flagged = true;
  }
  EXPECT_TRUE(step_flagged);
  // Losing parallel efficiency (higher-is-better) also gates.
  Baseline slow;
  slow.capture_scaling({model.breakdown(8)});
  for (auto& m : slow.scaling[0].metrics) {
    if (m.name == "parallel_efficiency") m.value *= 0.9;
  }
  EXPECT_FALSE(compare(base, slow).ok());
}

// ---- End-to-end on a small simulated run. ---------------------------------

TEST(ProfIntegration, SmallRunAttributesExhaustivelyAndRoundTrips) {
  core::ExperimentSetup setup;
  setup.n_molecules = 64;
  const core::Problem problem = core::Problem::make(setup);
  const sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  const auto results = core::run_all_variants(problem, cfg);
  for (const auto& r : results) {
    const StallTaxonomy t = attribute_cycles(r.run);
    EXPECT_TRUE(t.exhaustive()) << r.name;
    EXPECT_EQ(t.total_cycles, r.run.cycles) << r.name;
    // The controller invariant smdprof relies on.
    EXPECT_EQ(r.run.timeline.busy_cycles(sim::Lane::kStall, r.run.cycles),
              r.run.sdr_stall_cycles)
        << r.name;
    const WasteAccounting w =
        waste_accounting(r, problem.flops_per_interaction, setup.n_molecules);
    EXPECT_GE(w.wasted_flops, 0.0) << r.name;
    EXPECT_GT(w.useful_flops, 0.0) << r.name;
  }
  const Baseline base = Baseline::capture(results, setup, cfg);
  const std::string path = testing::TempDir() + "prof_baseline_test.json";
  base.write(path);
  const Baseline loaded = Baseline::load(path);
  const CompareReport rep = compare(loaded, base);
  EXPECT_TRUE(rep.ok()) << format_compare(rep);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smd::prof
