#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/core/blocking.h"
#include "src/core/kernels.h"
#include "src/core/layouts.h"
#include "src/core/program.h"
#include "src/core/run.h"
#include "src/md/force_ref.h"

namespace smd::core {
namespace {

/// A small but fully-featured problem (hundreds of pairs, multiple strips
/// forced by a small SRF) used by the end-to-end tests.
const Problem& small_problem() {
  static const Problem p = [] {
    ExperimentSetup setup;
    setup.n_molecules = 125;
    setup.cutoff = 0.7;
    return Problem::make(setup);
  }();
  return p;
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

TEST(Kernels, AllVariantsBuildAndValidate) {
  for (Variant v : {Variant::kExpanded, Variant::kFixed, Variant::kVariable,
                    Variant::kDuplicated}) {
    const kernel::KernelDef def = build_water_kernel(v, md::spc());
    EXPECT_NO_THROW(def.validate()) << variant_name(v);
    EXPECT_GT(def.n_regs, 0);
  }
}

TEST(Kernels, InteractionFlopCensusMatchesPaperShape) {
  const kernel::FlopCensus c = interaction_flops(md::spc());
  // Paper: ~234 flops including 9 divides and 9 square roots.
  EXPECT_EQ(c.divides, 9);
  EXPECT_EQ(c.square_roots, 9);
  EXPECT_GE(c.flops, 180);
  EXPECT_LE(c.flops, 260);
}

TEST(Kernels, DuplicatedIsCheaperPerIteration) {
  // duplicated skips the neighbor-force side entirely.
  const auto fixed = build_water_kernel(Variant::kFixed, md::spc());
  const auto dup = build_water_kernel(Variant::kDuplicated, md::spc());
  EXPECT_LT(dup.body_census().flops, fixed.body_census().flops);
  EXPECT_LT(dup.body_census().words_written, fixed.body_census().words_written);
}

TEST(Kernels, VariableUsesConditionalStreams) {
  const auto def = build_water_kernel(Variant::kVariable, md::spc());
  bool has_cond_in = false, has_cond_out = false;
  for (const auto& s : def.streams) {
    if (s.conditional && s.dir == kernel::StreamDir::kIn) has_cond_in = true;
    if (s.conditional && s.dir == kernel::StreamDir::kOut) has_cond_out = true;
  }
  EXPECT_TRUE(has_cond_in);
  EXPECT_TRUE(has_cond_out);
}

// ---------------------------------------------------------------------------
// Layouts
// ---------------------------------------------------------------------------

class LayoutInvariants : public ::testing::TestWithParam<Variant> {};

TEST_P(LayoutInvariants, CountsConsistent) {
  const Variant v = GetParam();
  const Problem& p = small_problem();
  LayoutOptions opts;
  const VariantLayout lay = build_layout(v, p.system, p.half_list, opts);

  EXPECT_EQ(lay.n_real_interactions, p.half_list.n_pairs());
  EXPECT_GE(lay.n_computed_interactions, lay.n_real_interactions *
                                             (v == Variant::kDuplicated ? 2 : 1));
  EXPECT_FALSE(lay.strips.empty());
  // Strips tile the rounds exactly.
  std::int64_t r = 0;
  for (const auto& s : lay.strips) {
    EXPECT_EQ(s.round_begin, r);
    EXPECT_GT(s.round_end, s.round_begin);
    r = s.round_end;
  }
  EXPECT_EQ(r, lay.rounds);
  // Slices cover the index arrays exactly.
  EXPECT_EQ(lay.strips.back().neighbor_end,
            static_cast<std::int64_t>(lay.neighbor_gather_idx.size()));
  EXPECT_EQ(lay.strips.back().fc_end,
            static_cast<std::int64_t>(lay.force_c_scatter_idx.size()));
}

TEST_P(LayoutInvariants, GatherIndicesInRange) {
  const Variant v = GetParam();
  const Problem& p = small_problem();
  const VariantLayout lay = build_layout(v, p.system, p.half_list, {});
  const auto n = static_cast<std::uint64_t>(p.system.n_molecules());
  for (auto idx : lay.neighbor_gather_idx) EXPECT_LE(idx, n + 1);
  for (auto idx : lay.force_c_scatter_idx) EXPECT_LE(idx, n);
  for (auto idx : lay.force_n_scatter_idx) EXPECT_LE(idx, n);
}

TEST_P(LayoutInvariants, EveryRealPairAppearsOnce) {
  // Multiset of (min,max) molecule pairs reconstructed from the layout
  // must equal the half list (duplicated: twice).
  const Variant v = GetParam();
  const Problem& p = small_problem();
  const VariantLayout lay = build_layout(v, p.system, p.half_list, {});
  const auto n = static_cast<std::uint64_t>(p.system.n_molecules());

  std::map<std::pair<int, int>, int> seen;
  if (v == Variant::kExpanded) {
    for (std::size_t k = 0; k < lay.neighbor_gather_idx.size(); ++k) {
      const auto c = lay.central_gather_idx[k];
      const auto nb = lay.neighbor_gather_idx[k];
      if (c >= n || nb >= n) continue;  // padding
      ++seen[{static_cast<int>(std::min(c, nb)), static_cast<int>(std::max(c, nb))}];
    }
  } else {
    // Reconstruct block membership from the scatter streams: pair each
    // neighbor slot with its block's central via force_n order -- for the
    // fixed-like variants the slot order is deterministic; for variable we
    // use the neighbor/fc reconstruction below instead.
    if (v == Variant::kVariable) {
      GTEST_SKIP() << "covered by the end-to-end force validation";
    }
    const int L = kFixedListLength, C = 16;
    const std::int64_t blocks =
        static_cast<std::int64_t>(lay.force_c_scatter_idx.size());
    for (std::int64_t b = 0; b < blocks; ++b) {
      const auto central = lay.force_c_scatter_idx[static_cast<std::size_t>(b)];
      if (central >= n) continue;
      const std::int64_t r = b / C, c = b % C;
      for (int l = 0; l < L; ++l) {
        const std::int64_t slot = (r * L + l) * C + c;
        const auto nb = lay.neighbor_gather_idx[static_cast<std::size_t>(slot)];
        if (nb >= n) continue;
        ++seen[{static_cast<int>(std::min<std::uint64_t>(central, nb)),
                static_cast<int>(std::max<std::uint64_t>(central, nb))}];
      }
    }
  }
  const int expect = v == Variant::kDuplicated ? 2 : 1;
  std::int64_t total = 0;
  for (const auto& [pair, count] : seen) {
    EXPECT_EQ(count, expect) << pair.first << "," << pair.second;
    total += count;
  }
  EXPECT_EQ(total, p.half_list.n_pairs() * expect);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, LayoutInvariants,
                         ::testing::Values(Variant::kExpanded, Variant::kFixed,
                                           Variant::kVariable,
                                           Variant::kDuplicated));

TEST(Layouts, FullListDoublesPairs) {
  const Problem& p = small_problem();
  const md::NeighborList full = make_full_list(p.half_list);
  EXPECT_EQ(full.n_pairs(), 2 * p.half_list.n_pairs());
  // Symmetric: j in row i <=> i in row j.
  for (int i = 0; i < full.n_molecules(); ++i) {
    for (std::int32_t k = full.offsets[i]; k < full.offsets[i + 1]; ++k) {
      const std::int32_t j = full.neighbors[k];
      bool found = false;
      for (std::int32_t k2 = full.offsets[j]; k2 < full.offsets[j + 1]; ++k2) {
        if (full.neighbors[k2] == i) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Layouts, ShiftGroupsPartitionTheRow) {
  const Problem& p = small_problem();
  for (int mol = 0; mol < 20; ++mol) {
    const auto groups = group_by_shift(p.half_list, mol);
    std::int64_t total = 0;
    for (const auto& g : groups) total += static_cast<std::int64_t>(g.entries.size());
    EXPECT_EQ(total, p.half_list.degree(mol));
  }
}

TEST(Layouts, FixedPadsToListLength) {
  const Problem& p = small_problem();
  const VariantLayout lay = build_layout(Variant::kFixed, p.system, p.half_list, {});
  EXPECT_EQ(lay.n_neighbor_slots % kFixedListLength, 0);
  EXPECT_GE(lay.n_neighbor_slots, p.half_list.n_pairs());
}

/// The paper's full-scale dataset (900 molecules, r_c = 1 nm, mean degree
/// ~70). Layout construction is scalar-side and cheap; only used by tests
/// that need the paper's density regime.
const Problem& paper_problem() {
  static const Problem p = Problem::make({});
  return p;
}

TEST(Layouts, ArithmeticIntensityOrderingOnPaperDataset) {
  // Paper Table 4: duplicated > variable > fixed > expanded. The ordering
  // of fixed vs variable depends on the neighbor-count distribution (a
  // variable central amortizes over a whole shift group, a fixed one over
  // L=8), so it must be checked at the paper's density regime.
  const Problem& p = paper_problem();
  const double f = p.flops_per_interaction;
  const double ai_exp =
      build_layout(Variant::kExpanded, p.system, p.half_list, {}).arithmetic_intensity(f);
  const double ai_fix =
      build_layout(Variant::kFixed, p.system, p.half_list, {}).arithmetic_intensity(f);
  const double ai_var =
      build_layout(Variant::kVariable, p.system, p.half_list, {}).arithmetic_intensity(f);
  const double ai_dup =
      build_layout(Variant::kDuplicated, p.system, p.half_list, {}).arithmetic_intensity(f);
  EXPECT_LT(ai_exp, ai_fix);
  EXPECT_LT(ai_fix, ai_var);
  EXPECT_LT(ai_var, ai_dup);
}

// ---------------------------------------------------------------------------
// End-to-end: simulate each variant and validate forces.
// ---------------------------------------------------------------------------

class EndToEnd : public ::testing::TestWithParam<Variant> {};

TEST_P(EndToEnd, ForcesMatchReference) {
  const Variant v = GetParam();
  const Problem& p = small_problem();
  const VariantResult res = run_variant(p, v);
  EXPECT_LT(res.max_force_rel_err, 1e-9) << variant_name(v);
  EXPECT_GT(res.run.cycles, 0u);
  EXPECT_GT(res.solution_gflops, 0.0);
  EXPECT_GT(res.run.n_kernel_launches, 0);
}

TEST_P(EndToEnd, DeterministicAcrossRuns) {
  const Variant v = GetParam();
  const Problem& p = small_problem();
  const VariantResult a = run_variant(p, v);
  const VariantResult b = run_variant(p, v);
  EXPECT_EQ(a.run.cycles, b.run.cycles);
  EXPECT_EQ(a.mem_refs, b.mem_refs);
  EXPECT_DOUBLE_EQ(a.solution_gflops, b.solution_gflops);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, EndToEnd,
                         ::testing::Values(Variant::kExpanded, Variant::kFixed,
                                           Variant::kVariable,
                                           Variant::kDuplicated));

TEST(EndToEnd, LocalityDominatedByLrf) {
  // Figure 8: ~90%+ of references hit the LRF in every variant.
  const Problem& p = small_problem();
  for (Variant v : {Variant::kExpanded, Variant::kVariable}) {
    const VariantResult res = run_variant(p, v);
    EXPECT_GT(res.lrf_fraction, 0.80) << variant_name(v);
    EXPECT_NEAR(res.lrf_fraction + res.srf_fraction + res.mem_fraction, 1.0, 1e-9);
  }
}

TEST(EndToEnd, MemoryTrafficAndAiShapes) {
  const Problem& p = small_problem();
  const auto results = run_all_variants(p);
  std::map<Variant, const VariantResult*> by;
  for (const auto& r : results) by[r.variant] = &r;
  // expanded is by far the most traffic-hungry; fixed improves on it;
  // variable improves further (no dummy words).
  EXPECT_GT(by[Variant::kExpanded]->mem_refs, by[Variant::kFixed]->mem_refs);
  EXPECT_GT(by[Variant::kFixed]->mem_refs, by[Variant::kVariable]->mem_refs);
  // duplicated trades total traffic for arithmetic intensity: it has the
  // highest measured AI and the highest raw (all-ops) execution rate, even
  // though its absolute word count exceeds variable's.
  for (const auto& r : results) {
    if (r.variant == Variant::kDuplicated) continue;
    EXPECT_GT(by[Variant::kDuplicated]->ai_measured, r.ai_measured) << r.name;
  }
}

// ---------------------------------------------------------------------------
// Blocking model
// ---------------------------------------------------------------------------

TEST(Blocking, KernelRisesMemoryFalls) {
  BlockingModelParams params;
  params.variable_kernel_cycles = 1e6;
  params.variable_memory_cycles = 2e6;
  const BlockingModel model(params);
  const auto pts = model.sweep(0.5, 5.0, 10);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].kernel_rel, pts[i - 1].kernel_rel);
    EXPECT_LT(pts[i].memory_rel, pts[i - 1].memory_rel);
  }
}

TEST(Blocking, MemoryBoundWorkloadHasInteriorMinimum) {
  BlockingModelParams params;
  params.variable_kernel_cycles = 1e6;
  params.variable_memory_cycles = 2e6;  // memory bound, like the paper
  const BlockingModel model(params);
  const BlockingPoint min = model.minimum();
  EXPECT_LT(min.time_rel, 1.0);   // blocking helps
  EXPECT_GT(min.size, 0.5);       // interior minimum
  EXPECT_LT(min.size, 6.0);
}

TEST(Blocking, RejectsNonPositiveSize) {
  const BlockingModel model(BlockingModelParams{});
  EXPECT_THROW(model.at(0.0), std::runtime_error);
}

}  // namespace
}  // namespace smd::core
