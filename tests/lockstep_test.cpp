// Stepped-vs-event engine equivalence suite.
//
// The event-driven core (DESIGN.md section 10) is only allowed to exist
// because it is bit-identical to the cycle-stepped reference: same cycle
// counts, same attribution buckets, same timeline intervals, same memory
// image. This suite enforces that claim from three directions:
//   * a property test over randomized stream programs (mixed strided /
//     gather / scatter-add traffic, RAW chains, both SDR policies, varied
//     SDR counts and SRF pressure),
//   * SimEngine::kLockstep, which re-runs every program on both engines
//     and throws on the first diverging field, and
//   * the real application: all four StreamMD variants under lockstep.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/run.h"
#include "src/core/streammd.h"
#include "src/kernel/ir.h"
#include "src/sim/config.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace smd::sim {
namespace {

using Reg = kernel::KernelBuilder::Reg;

/// y = x * x elementwise.
const kernel::KernelDef& square_kernel() {
  static const kernel::KernelDef def = [] {
    kernel::KernelBuilder kb("square");
    const int in = kb.stream_in("x", 1);
    const int out = kb.stream_out("y", 1);
    const auto x = kb.read(in, 1);
    kb.write(out, kb.mul(x[0], x[0]), 1);
    return kb.build();
  }();
  return def;
}

/// c = a * b + a, a two-input kernel to build RAW chains across strips.
const kernel::KernelDef& madd_kernel() {
  static const kernel::KernelDef def = [] {
    kernel::KernelBuilder kb("madd");
    const int ia = kb.stream_in("a", 1);
    const int ib = kb.stream_in("b", 1);
    const int oc = kb.stream_out("c", 1);
    const auto a = kb.read(ia, 1);
    const auto b = kb.read(ib, 1);
    kb.write(oc, kb.add(kb.mul(a[0], b[0]), a[0]), 1);
    return kb.build();
  }();
  return def;
}

/// A heavier kernel so kernel time can dominate or trail memory time.
const kernel::KernelDef& heavy_kernel() {
  static const kernel::KernelDef def = [] {
    kernel::KernelBuilder kb("heavy");
    const int in = kb.stream_in("x", 1);
    const int out = kb.stream_out("y", 1);
    const auto x = kb.read(in, 1);
    Reg v = x[0];
    for (int i = 0; i < 5; ++i) v = kb.mul(v, v);
    kb.write(out, kb.rsqrt(v), 1);
    return kb.build();
  }();
  return def;
}

MachineConfig random_config(util::Rng& rng, SdrPolicy policy,
                            SimEngine engine) {
  MachineConfig cfg = MachineConfig::merrimac();
  cfg.kernel_startup_cycles = 10;
  cfg.mem.dram.access_latency = 20;
  cfg.sdr_policy = policy;
  cfg.engine = engine;
  const int sdr_choices[] = {1, 2, 3, 8};
  cfg.n_stream_descriptor_registers =
      sdr_choices[rng.uniform_u64(4)];
  // Occasionally shrink the SRF to force capacity stalls (but keep the
  // double-buffering floor of MC015: 4 * 16 * 16 clusters = 1024 words).
  if (rng.uniform_u64(3) == 0) {
    cfg.srf_words = 2048 + static_cast<std::int64_t>(rng.uniform_u64(4096));
  }
  return cfg;
}

/// One randomized strip-pipelined program; identical construction for both
/// machines (same rng stream consumed once, program reused).
StreamProgram random_program(util::Rng& rng, mem::GlobalMemory& mem,
                             std::vector<std::uint64_t>* out_bases,
                             std::vector<std::int64_t>* out_lens) {
  StreamProgram prog;
  const int n_strips = 1 + static_cast<int>(rng.uniform_u64(5));
  StreamId prev_out = -1;
  std::int64_t prev_len = 0;
  for (int strip = 0; strip < n_strips; ++strip) {
    const std::int64_t n = 16 * (1 + static_cast<std::int64_t>(
                                        rng.uniform_u64(24)));
    const StreamId s_in = prog.new_stream(n);
    mem::MemOpDesc load;
    load.n_records = n;
    load.record_words = 1;
    if (rng.uniform_u64(3) == 0) {
      load.kind = mem::MemOpKind::kLoadGather;
      load.base = mem.alloc(n);
      load.indices.resize(static_cast<std::size_t>(n));
      for (auto& ix : load.indices) ix = rng.uniform_u64(
          static_cast<std::uint64_t>(n));
    } else {
      load.kind = mem::MemOpKind::kLoadStrided;
      const std::int64_t stride =
          1 + static_cast<std::int64_t>(rng.uniform_u64(3));
      load.stride_words = stride > 1 ? stride : 0;
      load.base = mem.alloc(n * stride);
    }
    prog.load(load, s_in);

    const StreamId s_out = prog.new_stream(n);
    // Chain to the previous strip's output sometimes: a RAW dependence the
    // scoreboard must respect on both engines.
    if (prev_out >= 0 && prev_len == n && rng.uniform_u64(2) == 0) {
      prog.kernel(&madd_kernel(), {s_in, prev_out, s_out}, n / 16);
    } else if (rng.uniform_u64(3) == 0) {
      prog.kernel(&heavy_kernel(), {s_in, s_out}, n / 16);
    } else {
      prog.kernel(&square_kernel(), {s_in, s_out}, n / 16);
    }

    mem::MemOpDesc store;
    store.n_records = n;
    store.record_words = 1;
    store.base = mem.alloc(n);
    if (rng.uniform_u64(4) == 0) {
      store.kind = mem::MemOpKind::kScatterAdd;
      store.indices.resize(static_cast<std::size_t>(n));
      // Duplicates on purpose: exercises the combining-store path.
      for (auto& ix : store.indices) ix = rng.uniform_u64(
          static_cast<std::uint64_t>(n));
    } else {
      store.kind = mem::MemOpKind::kStoreStrided;
    }
    prog.store(store, s_out);
    out_bases->push_back(store.base);
    out_lens->push_back(n);
    prev_out = s_out;
    prev_len = n;
  }
  return prog;
}

void fill_memory(mem::GlobalMemory& mem, util::Rng& rng) {
  for (std::int64_t w = 0; w < mem.size(); ++w) {
    mem.write(static_cast<std::uint64_t>(w), rng.uniform(0.5, 2.0));
  }
}

TEST(LockstepProperty, RandomProgramsBitIdenticalAcrossEngines) {
  int lockstep_runs = 0;
  for (int trial = 0; trial < 100; ++trial) {
    for (const SdrPolicy policy :
         {SdrPolicy::kTransferScoped, SdrPolicy::kConservative}) {
      const std::uint64_t seed =
          0xabcdULL + 977ULL * static_cast<std::uint64_t>(trial) +
          (policy == SdrPolicy::kConservative ? 1 : 0);

      // Two machines with identical configs (bar the engine), identical
      // allocation sequences and identical initial memory images.
      util::Rng cfg_rng(seed);
      const MachineConfig stepped_cfg =
          random_config(cfg_rng, policy, SimEngine::kStepped);
      MachineConfig event_cfg = stepped_cfg;
      event_cfg.engine = SimEngine::kEvent;

      Machine stepped(stepped_cfg);
      Machine event(event_cfg);
      std::vector<std::uint64_t> bases;
      std::vector<std::int64_t> lens;
      util::Rng prog_rng(seed ^ 0x9e3779b97f4a7c15ULL);
      const StreamProgram prog =
          random_program(prog_rng, stepped.memory(), &bases, &lens);
      {
        std::vector<std::uint64_t> b2;
        std::vector<std::int64_t> l2;
        util::Rng prog_rng2(seed ^ 0x9e3779b97f4a7c15ULL);
        (void)random_program(prog_rng2, event.memory(), &b2, &l2);
      }
      util::Rng fill_rng(seed + 1);
      fill_memory(stepped.memory(), fill_rng);
      fill_rng.reseed(seed + 1);
      fill_memory(event.memory(), fill_rng);

      const RunStats a = stepped.run(prog);
      const RunStats b = event.run(prog);
      ASSERT_EQ(diff_run_stats(a, b), "")
          << "trial " << trial << " policy "
          << (policy == SdrPolicy::kConservative ? "conservative"
                                                 : "transfer-scoped");
      ASSERT_EQ(stepped.memory().size(), event.memory().size());
      for (std::int64_t w = 0; w < stepped.memory().size(); ++w) {
        const auto addr = static_cast<std::uint64_t>(w);
        ASSERT_EQ(stepped.memory().read(addr), event.memory().read(addr))
            << "trial " << trial << " word " << w;
      }

      // Every few trials exercise the built-in cross-check mode too: it
      // throws on any divergence.
      if (trial % 10 == 0) {
        MachineConfig lock_cfg = stepped_cfg;
        lock_cfg.engine = SimEngine::kLockstep;
        Machine lockstep(lock_cfg);
        std::vector<std::uint64_t> b3;
        std::vector<std::int64_t> l3;
        util::Rng prog_rng3(seed ^ 0x9e3779b97f4a7c15ULL);
        (void)random_program(prog_rng3, lockstep.memory(), &b3, &l3);
        fill_rng.reseed(seed + 1);
        fill_memory(lockstep.memory(), fill_rng);
        const RunStats c = lockstep.run(prog);
        EXPECT_EQ(diff_run_stats(b, c), "") << "lockstep result drifted";
        ++lockstep_runs;
      }
    }
  }
  EXPECT_GE(lockstep_runs, 20);
}

TEST(LockstepProperty, EngineRoundTripNames) {
  for (const SimEngine e :
       {SimEngine::kStepped, SimEngine::kEvent, SimEngine::kLockstep}) {
    EXPECT_EQ(parse_engine(engine_name(e)), e);
  }
  EXPECT_THROW(parse_engine("warp-speed"), std::invalid_argument);
}

TEST(Lockstep, DiffReportsFirstMismatchedField) {
  RunStats a, b;
  a.cycles = 100;
  b.cycles = 101;
  b.sdr_stall_cycles = 7;
  const std::string diff = diff_run_stats(a, b);
  EXPECT_NE(diff.find("cycles"), std::string::npos);
  EXPECT_NE(diff.find("sdr_stall_cycles"), std::string::npos);
  EXPECT_EQ(diff_run_stats(a, a), "");
}

// The real application: one small time-step per variant, both engines in
// lockstep. This is the ctest wired into scripts/check.sh.
TEST(Lockstep, StreamMdVariantsRunBitIdentical) {
  core::ExperimentSetup setup;
  setup.n_molecules = 64;
  const core::Problem problem = core::Problem::make(setup);
  for (const core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    MachineConfig cfg = MachineConfig::merrimac();
    cfg.engine = SimEngine::kLockstep;
    // kLockstep throws on the first diverging stat; completing the run IS
    // the assertion.
    const core::VariantResult r = core::run_variant(problem, v, cfg);
    EXPECT_GT(r.run.cycles, 0u) << core::variant_name(v);
  }
}

}  // namespace
}  // namespace smd::sim
