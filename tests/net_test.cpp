#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "src/net/multinode.h"
#include "src/net/parallel.h"
#include "src/net/topology.h"
#include "src/obs/trace_event.h"

namespace smd::net {
namespace {

TEST(Topology, TierClassification) {
  const Topology topo{NetworkConfig{}};
  EXPECT_EQ(topo.tier(0, 0), Tier::kSelf);
  EXPECT_EQ(topo.tier(0, 15), Tier::kBoard);
  EXPECT_EQ(topo.tier(0, 16), Tier::kBackplane);
  EXPECT_EQ(topo.tier(0, 511), Tier::kBackplane);
  EXPECT_EQ(topo.tier(0, 512), Tier::kSystem);
}

TEST(Topology, SystemScalesTo16384Nodes) {
  // Paper Section 2: "scalable up to a 16,384 processor PFLOPS system"
  // (2 PFLOPS at 128 GFLOPS per node).
  const NetworkConfig cfg;
  EXPECT_EQ(cfg.max_nodes(), 16384);
  EXPECT_NEAR(cfg.max_nodes() * 128.0 / 1e6, 2.097, 0.01);  // PFLOPS
}

TEST(Topology, LatencyGrowsWithTier) {
  const Topology topo{NetworkConfig{}};
  const double board = topo.route(0, 1).latency_ns;
  const double backplane = topo.route(0, 100).latency_ns;
  const double system = topo.route(0, 1000).latency_ns;
  EXPECT_LT(board, backplane);
  EXPECT_LT(backplane, system);
  EXPECT_EQ(topo.route(0, 1).hops, 1);
  EXPECT_EQ(topo.route(0, 100).hops, 3);
  EXPECT_EQ(topo.route(0, 1000).hops, 5);
}

TEST(Topology, MessageTimeHasLatencyAndBandwidthTerms) {
  const Topology topo{NetworkConfig{}};
  const double small = topo.message_seconds(0, 1, 8);
  const double large = topo.message_seconds(0, 1, 8 << 20);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
  // An 8 MB message at 2.5 GB/s takes ~3.3 ms, dwarfing latency.
  EXPECT_NEAR(large, (8.0 * (1 << 20)) / 2.5e9, 1e-4);
}

TEST(Topology, RejectsOutOfRangeNodes) {
  const Topology topo{NetworkConfig{}};
  EXPECT_THROW(topo.route(0, 1 << 20), std::runtime_error);
}

TEST(Topology, BisectionScalesLinearly) {
  const Topology topo{NetworkConfig{}};
  EXPECT_DOUBLE_EQ(topo.bisection_gbytes(64), 2.0 * topo.bisection_gbytes(32));
}

TEST(Topology, NodeInjectionBandwidth) {
  // 4 routers x 2 channels x 2.5 GB/s = 20 GB/s per node (paper 2.3).
  const NetworkConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.node_injection_gbytes(), 20.0);
  NetworkConfig half = cfg;
  half.channels_per_node_per_router = 1;
  EXPECT_DOUBLE_EQ(half.node_injection_gbytes(), 10.0);
}

TEST(Topology, MaxNodesArithmetic) {
  NetworkConfig cfg;
  cfg.nodes_per_board = 8;
  cfg.boards_per_backplane = 4;
  cfg.backplanes_per_system = 3;
  EXPECT_EQ(cfg.nodes_per_backplane(), 32);
  EXPECT_EQ(cfg.max_nodes(), 96);
}

TEST(Topology, TierLatencySelection) {
  // Per-tier latency is the sum of its hop and wire terms; pin the exact
  // arithmetic so a topology change cannot silently re-cost a tier.
  const NetworkConfig cfg;
  const Topology topo{cfg};
  EXPECT_DOUBLE_EQ(topo.route(0, 0).latency_ns, 0.0);
  EXPECT_DOUBLE_EQ(topo.route(0, 1).latency_ns,
                   cfg.router_latency_ns + 2 * cfg.board_wire_ns);
  EXPECT_DOUBLE_EQ(topo.route(0, 16).latency_ns,
                   3 * cfg.router_latency_ns + 2 * cfg.board_wire_ns +
                       2 * cfg.backplane_wire_ns);
  EXPECT_DOUBLE_EQ(topo.route(0, 512).latency_ns,
                   5 * cfg.router_latency_ns + 2 * cfg.board_wire_ns +
                       2 * cfg.backplane_wire_ns + 2 * cfg.optics_ns);
}

TEST(Topology, LatencyMonotoneWithDistance) {
  // Walking away from node 0 only ever climbs tiers, so the unloaded
  // latency is non-decreasing in node distance.
  const Topology topo{NetworkConfig{}};
  double prev = 0.0;
  for (std::int64_t dst = 1; dst < 2048; dst = dst * 2 + 1) {
    const double lat = topo.route(0, dst).latency_ns;
    EXPECT_GE(lat, prev) << "dst " << dst;
    prev = lat;
  }
}

// ---- Per-node decomposition (src/net/parallel.h). ------------------------

TEST(Parallel, GridFactorsNearCubic) {
  EXPECT_EQ(decomposition_grid(1).nodes(), 1);
  const DecompositionGrid g64 = decomposition_grid(64);
  EXPECT_EQ(g64.nx, 4);
  EXPECT_EQ(g64.ny, 4);
  EXPECT_EQ(g64.nz, 4);
  const DecompositionGrid g12 = decomposition_grid(12);
  EXPECT_EQ(g12.nodes(), 12);
  EXPECT_EQ(g12.nx + g12.ny + g12.nz, 2 + 2 + 3);
  // Primes degrade to slabs -- the non-cubic regime.
  const DecompositionGrid g7 = decomposition_grid(7);
  EXPECT_EQ(g7.nx, 1);
  EXPECT_EQ(g7.ny, 1);
  EXPECT_EQ(g7.nz, 7);
}

TEST(Parallel, LedgersTileTheStepExactly) {
  const ScalingWorkload w;
  const Topology topo{NetworkConfig{}};
  for (const std::int64_t nodes : {1, 2, 3, 7, 8, 16, 60, 64}) {
    const StepBreakdown b = simulate_step(w, topo, nodes);
    ASSERT_EQ(b.ledgers.size(), static_cast<std::size_t>(nodes));
    std::int64_t owned = 0;
    std::uint64_t max_busy = 0;
    for (const auto& ledger : b.ledgers) {
      EXPECT_EQ(ledger.total_ns(), b.step_ns)
          << "P=" << nodes << " node " << ledger.node;
      owned += ledger.molecules;
      max_busy = std::max(max_busy, ledger.busy_ns());
    }
    EXPECT_EQ(owned, w.n_molecules) << "P=" << nodes;
    EXPECT_EQ(max_busy, b.step_ns) << "P=" << nodes;
    EXPECT_EQ(b.ledgers[static_cast<std::size_t>(b.critical_node)].busy_ns(),
              max_busy);
    EXPECT_GE(b.imbalance_ratio, 0.0);
  }
}

TEST(Parallel, DeterministicAcrossCalls) {
  const ScalingWorkload w;
  const Topology topo{NetworkConfig{}};
  const StepBreakdown a = simulate_step(w, topo, 16);
  const StepBreakdown b = simulate_step(w, topo, 16);
  ASSERT_EQ(a.ledgers.size(), b.ledgers.size());
  EXPECT_EQ(a.step_ns, b.step_ns);
  for (std::size_t i = 0; i < a.ledgers.size(); ++i) {
    EXPECT_EQ(a.ledgers[i].molecules, b.ledgers[i].molecules);
    EXPECT_EQ(a.ledgers[i].busy_ns(), b.ledgers[i].busy_ns());
  }
}

TEST(Parallel, LoadJitterSpreadsTheBarrier) {
  // With jitter the slowest node defines the step and everyone else
  // accrues barrier wait; with jitter off and a molecule count divisible
  // by P the waits collapse to rounding noise.
  ScalingWorkload jittered;
  jittered.n_molecules = 115200;
  const Topology topo{NetworkConfig{}};
  const StepBreakdown b = simulate_step(jittered, topo, 8);
  std::uint64_t waits = 0;
  for (const auto& ledger : b.ledgers) waits += ledger.imbalance_wait_ns;
  EXPECT_GT(waits, 0u);
  EXPECT_GT(b.imbalance_ratio, 0.0);

  ScalingWorkload flat = jittered;
  flat.load_jitter = 0.0;
  const StepBreakdown f = simulate_step(flat, topo, 8);
  EXPECT_LT(f.imbalance_ratio, b.imbalance_ratio);
}

TEST(Parallel, HaloTierFollowsTheGrid) {
  // 64 nodes = 4x4x4: a z-step is 16 ids, so every node's halo crosses at
  // least the backplane while x-neighbors stay cheaper tiers.
  const ScalingWorkload w;
  const Topology topo{NetworkConfig{}};
  const StepBreakdown b = simulate_step(w, topo, 64);
  for (const auto& ledger : b.ledgers) {
    EXPECT_GE(ledger.tier, Tier::kBackplane) << "node " << ledger.node;
  }
  // 2 nodes stay on one board.
  const StepBreakdown b2 = simulate_step(w, topo, 2);
  for (const auto& ledger : b2.ledgers) {
    EXPECT_EQ(ledger.tier, Tier::kBoard);
  }
}

TEST(Parallel, TraceExportCarriesOneLanePerNode) {
  const ScalingWorkload w;
  const Topology topo{NetworkConfig{}};
  obs::TraceSink sink;
  append_trace(simulate_step(w, topo, 8), sink);
  EXPECT_GT(sink.size(), 8u);  // >= one slice per node
  const obs::Json j = sink.chrome_json();
  EXPECT_EQ(j.at("schema_version").as_int(), obs::kTraceSchemaVersion);
  // Slices per node must tile [0, step): sum of durations == step for the
  // busiest node and every slice belongs to pid 8.
  for (const obs::Json& ev : j.at("traceEvents").elements()) {
    EXPECT_EQ(ev.at("pid").as_int(), 8);
  }
}

TEST(Scaling, SingleNodeMatchesCalibration) {
  ScalingWorkload w;
  const ScalingModel model(w, NetworkConfig{});
  const ScalingPoint p1 = model.at(1);
  EXPECT_DOUBLE_EQ(p1.speedup, 1.0);
  EXPECT_DOUBLE_EQ(p1.efficiency, 1.0);
  EXPECT_EQ(p1.network_s, 0.0);
  EXPECT_GT(p1.step_s, 0.0);
}

TEST(Scaling, EfficiencyDecaysForSmallSystem) {
  // 900 molecules across many nodes: halo exchange costs bite, so
  // efficiency decays monotonically and speedup saturates well below
  // linear (it may even dip once messages cross network tiers).
  ScalingWorkload w;
  const ScalingModel model(w, NetworkConfig{});
  const auto pts = model.sweep({1, 2, 4, 8, 16, 32, 64});
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i].efficiency, pts[i - 1].efficiency + 1e-9);
  }
  EXPECT_GT(pts[1].speedup, 1.2);      // some parallel benefit
  EXPECT_LT(pts.back().speedup, 0.5 * 64);  // far from linear
}

TEST(Scaling, LargerSystemScalesBetter) {
  ScalingWorkload small;
  small.n_molecules = 900;
  ScalingWorkload large;
  large.n_molecules = 115200;  // 128x the paper system
  const ScalingModel ms(small, NetworkConfig{});
  const ScalingModel ml(large, NetworkConfig{});
  EXPECT_GT(ml.at(64).efficiency, ms.at(64).efficiency);
}

TEST(Scaling, HaloFractionShrinksWithSubdomainSize) {
  ScalingWorkload large;
  large.n_molecules = 115200;
  const ScalingModel model(large, NetworkConfig{});
  EXPECT_LT(model.at(8).halo_fraction, model.at(64).halo_fraction);
}

// ---- Edge cases the scalar model mishandled. -----------------------------

TEST(Scaling, RejectsNonPositiveNodeCounts) {
  const ScalingModel model(ScalingWorkload{}, NetworkConfig{});
  EXPECT_THROW(model.at(0), std::invalid_argument);
  EXPECT_THROW(model.at(-4), std::invalid_argument);
}

TEST(Scaling, DiagnosesNodeCountsBeyondTheMachine) {
  const NetworkConfig cfg;
  const ScalingModel model(ScalingWorkload{}, cfg);
  EXPECT_NO_THROW(model.at(cfg.max_nodes()));
  try {
    (void)model.at(cfg.max_nodes() + 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max_nodes"), std::string::npos);
  }
}

TEST(Scaling, DegenerateWorkloadStaysFinite) {
  // Zero molecules -> zero interactions -> a zero-length step. The old
  // closed form divided by the zero base step; now speedup pins to 1 and
  // efficiency to 1/P, both finite.
  ScalingWorkload empty;
  empty.n_molecules = 0;
  const ScalingModel model(empty, NetworkConfig{});
  for (const std::int64_t nodes : {1, 2, 16}) {
    const ScalingPoint p = model.at(nodes);
    EXPECT_EQ(p.step_s, 0.0);
    EXPECT_TRUE(std::isfinite(p.speedup));
    EXPECT_TRUE(std::isfinite(p.efficiency));
    EXPECT_TRUE(std::isfinite(p.halo_fraction));
    EXPECT_DOUBLE_EQ(p.speedup, 1.0);
  }
}

TEST(Scaling, MoreNodesThanMolecules) {
  // 16 molecules on 64 nodes: most nodes own nothing; the partition must
  // still conserve molecules and keep every derived metric finite.
  ScalingWorkload tiny;
  tiny.n_molecules = 16;
  const ScalingModel model(tiny, NetworkConfig{});
  const StepBreakdown b = model.breakdown(64);
  const std::int64_t owned = std::accumulate(
      b.ledgers.begin(), b.ledgers.end(), std::int64_t{0},
      [](std::int64_t acc, const NodeLedger& l) { return acc + l.molecules; });
  EXPECT_EQ(owned, 16);
  const ScalingPoint p = model.at(64);
  EXPECT_TRUE(std::isfinite(p.efficiency));
  EXPECT_GE(p.halo_fraction, 0.0);
}

TEST(Scaling, NonCubicHaloStaysClamped) {
  // Prime node counts decompose to slabs; the halo can never replicate
  // more than the rest of the box no matter how thin the slab gets.
  ScalingWorkload w;
  w.n_molecules = 4000;
  const ScalingModel model(w, NetworkConfig{});
  for (const std::int64_t nodes : {3, 7, 13, 31}) {
    const StepBreakdown b = model.breakdown(nodes);
    for (const auto& ledger : b.ledgers) {
      EXPECT_GE(ledger.halo_molecules, 0.0);
      EXPECT_LE(ledger.halo_molecules,
                static_cast<double>(w.n_molecules - ledger.molecules) + 1e-9)
          << "P=" << nodes << " node " << ledger.node;
    }
    EXPECT_LE(b.halo_fraction,
              static_cast<double>(nodes));  // bounded by replication limit
  }
}

TEST(Scaling, PointAggregatesMatchTheBreakdown) {
  ScalingWorkload w;
  w.n_molecules = 7200;
  const ScalingModel model(w, NetworkConfig{});
  const ScalingPoint p = model.at(8);
  const StepBreakdown b = model.breakdown(8);
  EXPECT_DOUBLE_EQ(p.step_s, static_cast<double>(b.step_ns) * 1e-9);
  EXPECT_EQ(p.critical_node, b.critical_node);
  EXPECT_DOUBLE_EQ(p.imbalance_ratio, b.imbalance_ratio);
  const auto& crit = b.ledgers[static_cast<std::size_t>(b.critical_node)];
  EXPECT_DOUBLE_EQ(p.compute_s, static_cast<double>(crit.compute_ns) * 1e-9);
  EXPECT_DOUBLE_EQ(
      p.network_s,
      static_cast<double>(crit.halo_gather_ns + crit.force_scatter_ns) *
          1e-9);
}

}  // namespace
}  // namespace smd::net
