#include <gtest/gtest.h>

#include "src/net/multinode.h"
#include "src/net/topology.h"

namespace smd::net {
namespace {

TEST(Topology, TierClassification) {
  const Topology topo{NetworkConfig{}};
  EXPECT_EQ(topo.tier(0, 0), Tier::kSelf);
  EXPECT_EQ(topo.tier(0, 15), Tier::kBoard);
  EXPECT_EQ(topo.tier(0, 16), Tier::kBackplane);
  EXPECT_EQ(topo.tier(0, 511), Tier::kBackplane);
  EXPECT_EQ(topo.tier(0, 512), Tier::kSystem);
}

TEST(Topology, SystemScalesTo16384Nodes) {
  // Paper Section 2: "scalable up to a 16,384 processor PFLOPS system"
  // (2 PFLOPS at 128 GFLOPS per node).
  const NetworkConfig cfg;
  EXPECT_EQ(cfg.max_nodes(), 16384);
  EXPECT_NEAR(cfg.max_nodes() * 128.0 / 1e6, 2.097, 0.01);  // PFLOPS
}

TEST(Topology, LatencyGrowsWithTier) {
  const Topology topo{NetworkConfig{}};
  const double board = topo.route(0, 1).latency_ns;
  const double backplane = topo.route(0, 100).latency_ns;
  const double system = topo.route(0, 1000).latency_ns;
  EXPECT_LT(board, backplane);
  EXPECT_LT(backplane, system);
  EXPECT_EQ(topo.route(0, 1).hops, 1);
  EXPECT_EQ(topo.route(0, 100).hops, 3);
  EXPECT_EQ(topo.route(0, 1000).hops, 5);
}

TEST(Topology, MessageTimeHasLatencyAndBandwidthTerms) {
  const Topology topo{NetworkConfig{}};
  const double small = topo.message_seconds(0, 1, 8);
  const double large = topo.message_seconds(0, 1, 8 << 20);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
  // An 8 MB message at 2.5 GB/s takes ~3.3 ms, dwarfing latency.
  EXPECT_NEAR(large, (8.0 * (1 << 20)) / 2.5e9, 1e-4);
}

TEST(Topology, RejectsOutOfRangeNodes) {
  const Topology topo{NetworkConfig{}};
  EXPECT_THROW(topo.route(0, 1 << 20), std::runtime_error);
}

TEST(Topology, BisectionScalesLinearly) {
  const Topology topo{NetworkConfig{}};
  EXPECT_DOUBLE_EQ(topo.bisection_gbytes(64), 2.0 * topo.bisection_gbytes(32));
}

TEST(Scaling, SingleNodeMatchesCalibration) {
  ScalingWorkload w;
  const ScalingModel model(w, NetworkConfig{});
  const ScalingPoint p1 = model.at(1);
  EXPECT_DOUBLE_EQ(p1.speedup, 1.0);
  EXPECT_DOUBLE_EQ(p1.efficiency, 1.0);
  EXPECT_EQ(p1.network_s, 0.0);
  EXPECT_GT(p1.step_s, 0.0);
}

TEST(Scaling, EfficiencyDecaysForSmallSystem) {
  // 900 molecules across many nodes: halo exchange costs bite, so
  // efficiency decays monotonically and speedup saturates well below
  // linear (it may even dip once messages cross network tiers).
  ScalingWorkload w;
  const ScalingModel model(w, NetworkConfig{});
  const auto pts = model.sweep({1, 2, 4, 8, 16, 32, 64});
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i].efficiency, pts[i - 1].efficiency + 1e-9);
  }
  EXPECT_GT(pts[1].speedup, 1.2);      // some parallel benefit
  EXPECT_LT(pts.back().speedup, 0.5 * 64);  // far from linear
}

TEST(Scaling, LargerSystemScalesBetter) {
  ScalingWorkload small;
  small.n_molecules = 900;
  ScalingWorkload large;
  large.n_molecules = 115200;  // 128x the paper system
  const ScalingModel ms(small, NetworkConfig{});
  const ScalingModel ml(large, NetworkConfig{});
  EXPECT_GT(ml.at(64).efficiency, ms.at(64).efficiency);
}

TEST(Scaling, HaloFractionShrinksWithSubdomainSize) {
  ScalingWorkload large;
  large.n_molecules = 115200;
  const ScalingModel model(large, NetworkConfig{});
  EXPECT_LT(model.at(8).halo_fraction, model.at(64).halo_fraction);
}

}  // namespace
}  // namespace smd::net
