// Cross-module integration sweeps: every StreamMD variant, across dataset
// sizes, seeds and machine configurations (cluster counts, SRF pressure,
// SDR policies, list lengths), must reproduce the reference forces through
// the full simulated pipeline and keep its run statistics self-consistent.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/core/run.h"

namespace smd::core {
namespace {

Problem make_problem(int n, double rc, std::uint64_t seed) {
  ExperimentSetup s;
  s.n_molecules = n;
  s.cutoff = rc;
  s.seed = seed;
  return Problem::make(s);
}

// ---------------------------------------------------------------------------
// Forces match across datasets and seeds.
// ---------------------------------------------------------------------------

class DatasetSweep
    : public ::testing::TestWithParam<std::tuple<Variant, int, int>> {};

TEST_P(DatasetSweep, ForcesMatchReference) {
  const auto [variant, n, seed] = GetParam();
  const Problem p = make_problem(n, 0.65, static_cast<std::uint64_t>(seed));
  const VariantResult r = run_variant(p, variant);
  EXPECT_LT(r.max_force_rel_err, 1e-9)
      << variant_name(variant) << " n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DatasetSweep,
    ::testing::Combine(::testing::Values(Variant::kExpanded, Variant::kFixed,
                                         Variant::kVariable,
                                         Variant::kDuplicated),
                       ::testing::Values(32, 90, 160),
                       ::testing::Values(1, 7)));

// ---------------------------------------------------------------------------
// Machine-configuration robustness.
// ---------------------------------------------------------------------------

class MachineSweep : public ::testing::TestWithParam<std::tuple<Variant, int>> {};

TEST_P(MachineSweep, ClusterCountsStillValidate) {
  const auto [variant, clusters] = GetParam();
  const Problem p = make_problem(100, 0.7, 3);
  sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  cfg.n_clusters = clusters;
  const VariantResult r = run_variant(p, variant, cfg);
  EXPECT_LT(r.max_force_rel_err, 1e-9)
      << variant_name(variant) << " clusters=" << clusters;
}

INSTANTIATE_TEST_SUITE_P(
    Clusters, MachineSweep,
    ::testing::Combine(::testing::Values(Variant::kExpanded, Variant::kFixed,
                                         Variant::kVariable,
                                         Variant::kDuplicated),
                       ::testing::Values(4, 8, 32)));

TEST(MachineRobustness, TinySrfForcesStillCorrect) {
  const Problem p = make_problem(80, 0.7, 5);
  sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  cfg.srf_words = 20000;  // forces many small strips + issue stalls
  for (Variant v : {Variant::kExpanded, Variant::kVariable}) {
    const VariantResult r = run_variant(p, v, cfg);
    EXPECT_LT(r.max_force_rel_err, 1e-9) << variant_name(v);
    EXPECT_LE(r.run.srf_peak_words, cfg.srf_words);
  }
}

TEST(MachineRobustness, ConservativeSdrStillCorrectJustSlower) {
  const Problem p = make_problem(100, 0.7, 9);
  sim::MachineConfig cons = sim::MachineConfig::merrimac();
  cons.sdr_policy = sim::SdrPolicy::kConservative;
  cons.n_stream_descriptor_registers = 2;
  sim::MachineConfig fast = sim::MachineConfig::merrimac();
  const VariantResult a = run_variant(p, Variant::kDuplicated, cons);
  const VariantResult b = run_variant(p, Variant::kDuplicated, fast);
  EXPECT_LT(a.max_force_rel_err, 1e-9);
  EXPECT_GE(a.run.cycles, b.run.cycles);
}

TEST(MachineRobustness, SlowDramStillCorrect) {
  const Problem p = make_problem(80, 0.7, 2);
  sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  cfg.mem.dram.channel_words_per_cycle = 0.1;  // 6.4 GB/s total
  const VariantResult r = run_variant(p, Variant::kExpanded, cfg);
  EXPECT_LT(r.max_force_rel_err, 1e-9);
  // Starved DRAM must show up as a memory-bound run.
  EXPECT_GT(r.run.mem_busy_cycles, r.run.kernel_busy_cycles);
}

TEST(MachineRobustness, FixedListLengthSweep) {
  const Problem base = make_problem(100, 0.7, 4);
  for (int L : {2, 4, 16, 32}) {
    ExperimentSetup s = base.setup;
    s.fixed_list_length = L;
    Problem p = base;
    p.setup = s;
    const VariantResult r = run_variant(p, Variant::kFixed);
    EXPECT_LT(r.max_force_rel_err, 1e-9) << "L=" << L;
    EXPECT_EQ(r.n_neighbor_slots % L, 0) << "L=" << L;
  }
}

// ---------------------------------------------------------------------------
// Statistic self-consistency.
// ---------------------------------------------------------------------------

TEST(StatsConsistency, CyclesBoundedByBusyLanes) {
  const Problem p = make_problem(120, 0.7, 6);
  for (const auto& r : run_all_variants(p)) {
    // Total time at least each lane's busy time, at most their sum plus
    // issue overheads.
    EXPECT_GE(r.run.cycles + 1, r.run.kernel_busy_cycles);
    EXPECT_GE(r.run.cycles + 1, r.run.mem_busy_cycles);
    EXPECT_LE(r.run.cycles, r.run.kernel_busy_cycles + r.run.mem_busy_cycles +
                                10000);
    // Overlap can't exceed either lane.
    EXPECT_LE(r.run.overlap_cycles, r.run.kernel_busy_cycles);
    EXPECT_LE(r.run.overlap_cycles, r.run.mem_busy_cycles + 1);
  }
}

TEST(StatsConsistency, MemWordsMatchLayoutPrediction) {
  const Problem p = make_problem(120, 0.7, 6);
  for (Variant v : {Variant::kExpanded, Variant::kFixed, Variant::kVariable,
                    Variant::kDuplicated}) {
    LayoutOptions lopts;
    const VariantLayout lay = build_layout(v, p.system, p.half_list, lopts);
    const VariantResult r = run_variant(p, v);
    EXPECT_EQ(r.mem_refs, lay.memory_words()) << variant_name(v);
  }
}

TEST(StatsConsistency, SolutionFlopsIndependentOfVariant) {
  const Problem p = make_problem(120, 0.7, 6);
  // solution GFLOPS x time = useful flops = constant across variants.
  std::map<Variant, double> useful;
  for (const auto& r : run_all_variants(p)) {
    useful[r.variant] = r.solution_gflops * 1e9 * r.time_ms * 1e-3;
  }
  for (const auto& [v, f] : useful) {
    EXPECT_NEAR(f / useful[Variant::kExpanded], 1.0, 1e-9) << variant_name(v);
  }
}

TEST(StatsConsistency, DuplicatedExecutesTwiceTheFlops) {
  const Problem p = make_problem(120, 0.7, 6);
  const VariantResult var = run_variant(p, Variant::kVariable);
  const VariantResult dup = run_variant(p, Variant::kDuplicated);
  const double ratio =
      static_cast<double>(dup.run.interp.executed.flops) /
      static_cast<double>(var.run.interp.executed.flops);
  // 2x interactions, minus the neighbor-force arithmetic it skips, plus
  // dummy padding: lands somewhere around 1.5-2.2x.
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.4);
}

TEST(StatsConsistency, KernelLaunchesEqualStrips) {
  const Problem p = make_problem(120, 0.7, 6);
  for (Variant v : {Variant::kExpanded, Variant::kVariable}) {
    LayoutOptions lopts;
    const VariantLayout lay = build_layout(v, p.system, p.half_list, lopts);
    const VariantResult r = run_variant(p, v);
    EXPECT_EQ(r.run.n_kernel_launches, static_cast<int>(lay.strips.size()));
  }
}

// ---------------------------------------------------------------------------
// Numerical edge cases.
// ---------------------------------------------------------------------------

TEST(EdgeCases, TwoMoleculesOnly) {
  const Problem p = make_problem(2, 2.0, 1);
  ASSERT_GE(p.half_list.n_pairs(), 1);
  for (Variant v : {Variant::kExpanded, Variant::kFixed, Variant::kVariable,
                    Variant::kDuplicated}) {
    const VariantResult r = run_variant(p, v);
    EXPECT_LT(r.max_force_rel_err, 1e-9) << variant_name(v);
  }
}

TEST(EdgeCases, SparseSystemWithIsolatedMolecules) {
  // A cutoff small enough that many molecules have zero neighbors.
  const Problem p = make_problem(64, 0.35, 8);
  ASSERT_GT(p.half_list.n_pairs(), 0);
  ASSERT_LT(p.half_list.n_pairs(), 64L * 5);
  for (Variant v : {Variant::kExpanded, Variant::kFixed, Variant::kVariable,
                    Variant::kDuplicated}) {
    const VariantResult r = run_variant(p, v);
    EXPECT_LT(r.max_force_rel_err, 1e-9) << variant_name(v);
  }
}

TEST(EdgeCases, DummiesNeverLeakIntoRealForces) {
  // The trash row absorbs all dummy contributions; real rows must be
  // bitwise unaffected by padding. Compare fixed (heavy padding) against
  // expanded (no dummy interactions at all).
  const Problem p = make_problem(90, 0.6, 12);
  const VariantResult fixed = run_variant(p, Variant::kFixed);
  const VariantResult expanded = run_variant(p, Variant::kExpanded);
  EXPECT_LT(fixed.max_force_rel_err, 1e-9);
  EXPECT_LT(expanded.max_force_rel_err, 1e-9);
}

// ---------------------------------------------------------------------------
// Energy-streaming kernel.
// ---------------------------------------------------------------------------

TEST(EnergyKernel, MatchesReferencePotential) {
  const Problem p = make_problem(120, 0.7, 6);
  const EnergyRunResult r = run_expanded_with_energy(p);
  EXPECT_LT(r.result.max_force_rel_err, 1e-9);
  EXPECT_NEAR(r.e_coulomb, p.reference.e_coulomb,
              1e-9 * std::fabs(p.reference.e_coulomb) + 1e-6);
  EXPECT_NEAR(r.e_lj, p.reference.e_lj,
              1e-9 * std::fabs(p.reference.e_lj) + 1e-6);
}

TEST(EnergyKernel, CostsMoreThanForceOnlyKernel) {
  const Problem p = make_problem(120, 0.7, 6);
  const VariantResult plain = run_variant(p, Variant::kExpanded);
  const EnergyRunResult energy = run_expanded_with_energy(p);
  // Extra arithmetic (energy accumulation) and extra output words.
  EXPECT_GT(energy.result.run.interp.executed.flops,
            plain.run.interp.executed.flops);
  EXPECT_GT(energy.result.mem_refs, plain.mem_refs);
}

}  // namespace
}  // namespace smd::core
