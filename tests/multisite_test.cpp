// Tests for the Section 5.4 extension: interaction kernels for arbitrary
// multi-site water models, validated against an independent reference
// evaluated directly from the model's sites.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "src/core/kernels.h"
#include "src/kernel/interp.h"
#include "src/md/constants.h"
#include "src/md/vec3.h"
#include "src/md/water.h"
#include "src/util/rng.h"

namespace smd::core {
namespace {

/// Reference multi-site interaction: Coulomb on every charged site pair,
/// LJ between the two site-0s. Returns forces on central and neighbor
/// sites (flattened xyz).
void reference_interaction(const md::WaterModel& m,
                           const std::vector<md::Vec3>& c,
                           const std::vector<md::Vec3>& n,
                           std::vector<md::Vec3>* fc, std::vector<md::Vec3>* fn) {
  const int S = static_cast<int>(m.sites.size());
  fc->assign(static_cast<std::size_t>(S), {});
  fn->assign(static_cast<std::size_t>(S), {});
  for (int a = 0; a < S; ++a) {
    for (int b = 0; b < S; ++b) {
      const md::Vec3 d = c[static_cast<std::size_t>(a)] - n[static_cast<std::size_t>(b)];
      const double r2 = d.norm2();
      const double rinv = 1.0 / std::sqrt(r2);
      const double rinv2 = rinv * rinv;
      double fs = 0.0;
      const double qq = md::kCoulombFactor *
                        m.sites[static_cast<std::size_t>(a)].charge *
                        m.sites[static_cast<std::size_t>(b)].charge;
      if (qq != 0.0) fs += qq * rinv * rinv2;
      if (a == 0 && b == 0 && (m.c6 != 0.0 || m.c12 != 0.0)) {
        const double rinv6 = rinv2 * rinv2 * rinv2;
        fs += (12.0 * m.c12 * rinv6 * rinv6 - 6.0 * m.c6 * rinv6) * rinv2;
      }
      (*fc)[static_cast<std::size_t>(a)] += d * fs;
      (*fn)[static_cast<std::size_t>(b)] -= d * fs;
    }
  }
}

/// Run the multisite kernel on `pairs` random molecule pairs and compare
/// against the reference. One cluster keeps the data layout trivial.
void validate_model(const md::WaterModel& m, int pairs, std::uint64_t seed) {
  const int S = static_cast<int>(m.sites.size());
  util::Rng rng(seed);
  const kernel::KernelDef def = build_multisite_kernel(m);

  std::vector<double> c_pos, n_pos, shifts;
  std::vector<std::vector<md::Vec3>> want_fc, want_fn;
  for (int p = 0; p < pairs; ++p) {
    const md::Vec3 oc{rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
    const md::Vec3 on = oc + md::Vec3{rng.uniform(0.3, 0.6), rng.uniform(0.3, 0.6),
                                      rng.uniform(0.3, 0.6)};
    const md::Vec3 shift{rng.uniform(-1, 1), 0.0, rng.uniform(-1, 1)};
    std::vector<md::Vec3> c(static_cast<std::size_t>(S)), n(static_cast<std::size_t>(S));
    for (int s = 0; s < S; ++s) {
      c[static_cast<std::size_t>(s)] = oc + m.sites[static_cast<std::size_t>(s)].local_pos;
      n[static_cast<std::size_t>(s)] = on + m.sites[static_cast<std::size_t>(s)].local_pos;
      c_pos.insert(c_pos.end(), {c[static_cast<std::size_t>(s)].x, c[static_cast<std::size_t>(s)].y,
                                 c[static_cast<std::size_t>(s)].z});
      // Stream carries unshifted neighbors; the kernel applies the shift.
      n_pos.insert(n_pos.end(),
                   {n[static_cast<std::size_t>(s)].x - shift.x,
                    n[static_cast<std::size_t>(s)].y - shift.y,
                    n[static_cast<std::size_t>(s)].z - shift.z});
    }
    shifts.insert(shifts.end(), {shift.x, shift.y, shift.z});
    std::vector<md::Vec3> fc, fn;
    reference_interaction(m, c, n, &fc, &fn);
    want_fc.push_back(fc);
    want_fn.push_back(fn);
  }

  kernel::Interpreter interp(def, 1);
  std::vector<double> got_fc, got_fn;
  kernel::StreamBindings b;
  b.inputs = {std::span<const double>(c_pos), std::span<const double>(n_pos),
              std::span<const double>(shifts), {}, {}};
  b.outputs = {nullptr, nullptr, nullptr, &got_fc, &got_fn};
  interp.run(b, pairs);

  ASSERT_EQ(got_fc.size(), static_cast<std::size_t>(pairs * 3 * S));
  for (int p = 0; p < pairs; ++p) {
    for (int s = 0; s < S; ++s) {
      const std::size_t off = static_cast<std::size_t>((p * S + s) * 3);
      EXPECT_NEAR(got_fc[off + 0], want_fc[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)].x, 1e-8) << m.name;
      EXPECT_NEAR(got_fc[off + 1], want_fc[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)].y, 1e-8);
      EXPECT_NEAR(got_fc[off + 2], want_fc[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)].z, 1e-8);
      EXPECT_NEAR(got_fn[off + 0], want_fn[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)].x, 1e-8);
      EXPECT_NEAR(got_fn[off + 1], want_fn[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)].y, 1e-8);
      EXPECT_NEAR(got_fn[off + 2], want_fn[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)].z, 1e-8);
    }
  }
}

TEST(Multisite, SpcKernelMatchesReference) { validate_model(md::spc(), 10, 1); }
TEST(Multisite, Tip5pKernelMatchesReference) { validate_model(md::tip5p(), 10, 2); }
TEST(Multisite, PpcKernelMatchesReference) { validate_model(md::ppc(), 10, 3); }

TEST(Multisite, SpcMultisiteAgreesWithHandwrittenSpcKernel) {
  // The generalized builder specialized to SPC must census the same
  // divide/sqrt structure as the hand-written expanded kernel.
  const auto general = build_multisite_kernel(md::spc()).body_census();
  const auto hand = interaction_flops(md::spc());
  EXPECT_EQ(general.divides, hand.divides);
  EXPECT_EQ(general.square_roots, hand.square_roots);
  EXPECT_NEAR(static_cast<double>(general.flops),
              static_cast<double>(hand.flops), 12.0);
}

TEST(Multisite, InertSitePairsAreSkipped) {
  // TIP5P: oxygen is charge-neutral, so O-H and O-L pairs have no Coulomb
  // work; only O-O (LJ) plus the 16 charged pairs remain.
  const MultisiteProfile p = profile_multisite_kernel(md::tip5p());
  EXPECT_EQ(p.sites, 5);
  EXPECT_EQ(p.active_pairs, 17);  // 4x4 charged + OO LJ
  EXPECT_EQ(p.census.square_roots, 17);
}

TEST(Multisite, ComplexModelsRaiseArithmeticIntensity) {
  // The paper's Section 5.4 claim, quantified: TIP5P (five sites, four of
  // them charged) does more arithmetic per word than SPC and projects to
  // higher sustained GFLOPS. (Our PPC row is a *static* effective-charge
  // proxy -- the real polarizable model recomputes charges every step,
  // which is exactly the extra arithmetic the paper is pointing at; a
  // static proxy with a neutral oxygen actually loses intensity.)
  const MultisiteProfile spc = profile_multisite_kernel(md::spc());
  const MultisiteProfile tip5p = profile_multisite_kernel(md::tip5p());
  EXPECT_GT(tip5p.arithmetic_intensity, spc.arithmetic_intensity);
  EXPECT_GT(tip5p.projected_gflops, spc.projected_gflops);
  EXPECT_GT(tip5p.census.flops, spc.census.flops);
}

TEST(Multisite, ProfileComputeVsBandwidthBound) {
  // With generous memory bandwidth the projection is compute-bound and
  // scales ~linearly with cluster count.
  const MultisiteProfile p16 =
      profile_multisite_kernel(md::spc(), {.unroll = 2}, 16, 1000.0);
  const MultisiteProfile p32 =
      profile_multisite_kernel(md::spc(), {.unroll = 2}, 32, 1000.0);
  EXPECT_NEAR(p32.projected_gflops / p16.projected_gflops, 2.0, 0.01);
}

}  // namespace
}  // namespace smd::core
