// Stream-controller scoreboard semantics: ordering (RAW/WAR/WAW through
// streams), stream lifetime/SRF accounting, multi-consumer streams, and
// failure modes.
#include <gtest/gtest.h>

#include "src/kernel/ir.h"
#include "src/sim/machine.h"

namespace smd::sim {
namespace {

using Reg = kernel::KernelBuilder::Reg;

MachineConfig fast_config() {
  MachineConfig cfg = MachineConfig::merrimac();
  cfg.kernel_startup_cycles = 5;
  cfg.mem.dram.access_latency = 10;
  return cfg;
}

kernel::KernelDef make_scale(double k, const char* name) {
  kernel::KernelBuilder kb(name);
  const int in = kb.stream_in("x", 1);
  const int out = kb.stream_out("y", 1);
  kb.section(kernel::Section::kPrologue);
  const Reg c = kb.constant(k);
  kb.section(kernel::Section::kBody);
  const auto x = kb.read(in, 1);
  kb.write(out, kb.mul(x[0], c), 1);
  return kb.build();
}

mem::MemOpDesc strided(std::uint64_t base, std::int64_t n) {
  mem::MemOpDesc d;
  d.kind = mem::MemOpKind::kLoadStrided;
  d.base = base;
  d.n_records = n;
  d.record_words = 1;
  return d;
}

mem::MemOpDesc strided_store(std::uint64_t base, std::int64_t n) {
  mem::MemOpDesc d = strided(base, n);
  d.kind = mem::MemOpKind::kStoreStrided;
  return d;
}

TEST(Controller, KernelChainPropagatesThroughSrf) {
  // load -> x2 -> x3 -> store: the intermediate stream never touches
  // memory, exactly the long-term producer-consumer locality the SRF is
  // for.
  Machine machine(fast_config());
  auto& mem = machine.memory();
  const int n = 256;
  const auto in = mem.alloc(n), out = mem.alloc(n);
  for (int i = 0; i < n; ++i) mem.write(in + static_cast<std::uint64_t>(i), i);

  const auto k2 = make_scale(2.0, "x2");
  const auto k3 = make_scale(3.0, "x3");
  StreamProgram prog;
  const StreamId s0 = prog.new_stream(n);
  const StreamId s1 = prog.new_stream(n);
  const StreamId s2 = prog.new_stream(n);
  prog.load(strided(in, n), s0);
  prog.kernel(&k2, {s0, s1}, n / 16);
  prog.kernel(&k3, {s1, s2}, n / 16);
  prog.store(strided_store(out, n), s2);
  const RunStats stats = machine.run(prog);

  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(mem.read(out + static_cast<std::uint64_t>(i)), 6.0 * i);
  }
  // Only the endpoints moved through the memory system.
  EXPECT_EQ(stats.mem_words, 2 * n);
}

TEST(Controller, MultiConsumerStreamReadTwice) {
  // One loaded stream feeding two kernels: both must see the data, and
  // its SRF buffer must stay alive until the second consumer retires.
  Machine machine(fast_config());
  auto& mem = machine.memory();
  const int n = 128;
  const auto in = mem.alloc(n), out_a = mem.alloc(n), out_b = mem.alloc(n);
  for (int i = 0; i < n; ++i) mem.write(in + static_cast<std::uint64_t>(i), i + 1);

  const auto k2 = make_scale(2.0, "x2");
  const auto k5 = make_scale(5.0, "x5");
  StreamProgram prog;
  const StreamId s_in = prog.new_stream(n);
  const StreamId s_a = prog.new_stream(n);
  const StreamId s_b = prog.new_stream(n);
  prog.load(strided(in, n), s_in);
  prog.kernel(&k2, {s_in, s_a}, n / 16);
  prog.kernel(&k5, {s_in, s_b}, n / 16);
  prog.store(strided_store(out_a, n), s_a);
  prog.store(strided_store(out_b, n), s_b);
  machine.run(prog);
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(mem.read(out_a + static_cast<std::uint64_t>(i)), 2.0 * (i + 1));
    EXPECT_DOUBLE_EQ(mem.read(out_b + static_cast<std::uint64_t>(i)), 5.0 * (i + 1));
  }
}

TEST(Controller, WawOnReusedStreamRespectsProgramOrder) {
  // The same StreamId written by two loads with an intervening consumer:
  // the second load must wait for the first reader (WAR) and the final
  // store must see the second load's data (WAW ordering).
  Machine machine(fast_config());
  auto& mem = machine.memory();
  const int n = 64;
  const auto in1 = mem.alloc(n), in2 = mem.alloc(n);
  const auto out1 = mem.alloc(n), out2 = mem.alloc(n);
  for (int i = 0; i < n; ++i) {
    mem.write(in1 + static_cast<std::uint64_t>(i), 10.0 + i);
    mem.write(in2 + static_cast<std::uint64_t>(i), 90.0 + i);
  }
  StreamProgram prog;
  const StreamId s = prog.new_stream(n);
  prog.load(strided(in1, n), s);
  prog.store(strided_store(out1, n), s);
  prog.load(strided(in2, n), s);  // WAR with the store, WAW with load 1
  prog.store(strided_store(out2, n), s);
  machine.run(prog);
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(mem.read(out1 + static_cast<std::uint64_t>(i)), 10.0 + i);
    EXPECT_DOUBLE_EQ(mem.read(out2 + static_cast<std::uint64_t>(i)), 90.0 + i);
  }
}

TEST(Controller, ScatterAddStoreAccumulatesAcrossStrips) {
  // Two strips scatter-adding into the same rows: the reduction across
  // kernel invocations is exactly how StreamMD combines partial forces.
  Machine machine(fast_config());
  auto& mem = machine.memory();
  const int n = 64;
  const auto in = mem.alloc(2 * n);
  const auto out = mem.alloc(n);
  for (int i = 0; i < 2 * n; ++i) mem.write(in + static_cast<std::uint64_t>(i), 1.0);

  const auto k2 = make_scale(2.0, "x2");
  StreamProgram prog;
  for (int strip = 0; strip < 2; ++strip) {
    const StreamId s_in = prog.new_stream(n);
    const StreamId s_out = prog.new_stream(n);
    prog.load(strided(in + static_cast<std::uint64_t>(strip * n), n), s_in);
    prog.kernel(&k2, {s_in, s_out}, n / 16);
    mem::MemOpDesc d;
    d.kind = mem::MemOpKind::kScatterAdd;
    d.base = out;
    d.n_records = n;
    d.record_words = 1;
    for (int i = 0; i < n; ++i) d.indices.push_back(static_cast<std::uint64_t>(i));
    prog.store(d, s_out);
  }
  machine.run(prog);
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(mem.read(out + static_cast<std::uint64_t>(i)), 4.0);
  }
}

TEST(Controller, EmptyProgramCompletesImmediately) {
  Machine machine(fast_config());
  StreamProgram prog;
  const RunStats stats = machine.run(prog);
  EXPECT_EQ(stats.n_kernel_launches, 0);
  EXPECT_EQ(stats.n_memory_ops, 0);
}

TEST(Controller, ZeroRoundKernelRetires) {
  Machine machine(fast_config());
  const auto k2 = make_scale(2.0, "x2");
  StreamProgram prog;
  const StreamId s_in = prog.new_stream(0);
  const StreamId s_out = prog.new_stream(0);
  prog.kernel(&k2, {s_in, s_out}, 0);
  const RunStats stats = machine.run(prog);
  EXPECT_EQ(stats.n_kernel_launches, 1);
}

TEST(Controller, ThroughputScalesWithStripCount) {
  // Doubling the strips of identical work should roughly double the run
  // (sub-linear thanks to overlap, never super-linear).
  auto run_strips = [&](int strips) {
    Machine machine(fast_config());
    auto& mem = machine.memory();
    const int n = 2048;
    const auto in = mem.alloc(static_cast<std::int64_t>(strips) * n);
    const auto out = mem.alloc(static_cast<std::int64_t>(strips) * n);
    static const auto k2 = make_scale(2.0, "x2");
    StreamProgram prog;
    for (int s = 0; s < strips; ++s) {
      const StreamId a = prog.new_stream(n);
      const StreamId b = prog.new_stream(n);
      prog.load(strided(in + static_cast<std::uint64_t>(s * n), n), a);
      prog.kernel(&k2, {a, b}, n / 16);
      prog.store(strided_store(out + static_cast<std::uint64_t>(s * n), n), b);
    }
    return machine.run(prog).cycles;
  };
  const auto c2 = run_strips(2);
  const auto c4 = run_strips(4);
  EXPECT_GT(c4, c2);
  EXPECT_LT(static_cast<double>(c4), 2.2 * static_cast<double>(c2));
  EXPECT_GT(static_cast<double>(c4), 1.5 * static_cast<double>(c2));
}

TEST(Controller, TimelineRecordsEveryStreamOpWithLabels) {
  // The scoreboard's tracing hooks must emit one interval per stream op:
  // each kernel launch on the kernel lane, each memory op on the memory
  // lane, with human-readable labels naming the kernel / op kind.
  Machine machine(fast_config());
  auto& mem = machine.memory();
  const int n = 512;
  const auto in = mem.alloc(n), out = mem.alloc(n);
  static const auto k2 = make_scale(2.0, "x2");
  StreamProgram prog;
  const StreamId a = prog.new_stream(n);
  const StreamId b = prog.new_stream(n);
  prog.load(strided(in, n), a);
  prog.kernel(&k2, {a, b}, n / 16);
  prog.store(strided_store(out, n), b);
  const RunStats stats = machine.run(prog);

  int kernel_ivs = 0, memory_ivs = 0;
  bool saw_kernel_label = false, saw_load = false, saw_store = false;
  for (const auto& iv : stats.timeline.intervals()) {
    EXPECT_LT(iv.start, iv.end);
    EXPECT_LE(iv.end, stats.cycles);
    if (iv.lane == Lane::kKernel) {
      ++kernel_ivs;
      if (iv.label.find("x2") != std::string::npos) saw_kernel_label = true;
    } else {
      ++memory_ivs;
      EXPECT_GE(iv.track, 0);
      if (iv.label.find("load") != std::string::npos) saw_load = true;
      if (iv.label.find("store") != std::string::npos) saw_store = true;
    }
  }
  EXPECT_EQ(kernel_ivs, stats.n_kernel_launches);
  EXPECT_EQ(memory_ivs, stats.n_memory_ops);
  EXPECT_TRUE(saw_kernel_label);
  EXPECT_TRUE(saw_load);
  EXPECT_TRUE(saw_store);
}

TEST(Controller, TimelineOccupancyConsistentWithRunStats) {
  // The same consistency contract bench_fig7_overlap enforces: kernel
  // intervals are disjoint (one kernel at a time) so their union equals
  // the kernel busy-cycle counter exactly; the memory-lane union covers at
  // least the memory system's busy cycles; overlap matches the counter.
  Machine machine(fast_config());
  auto& mem = machine.memory();
  const int n = 4096;
  const auto in = mem.alloc(4 * n), out = mem.alloc(4 * n);
  static const auto k2 = make_scale(2.0, "x2");
  StreamProgram prog;
  for (int s = 0; s < 4; ++s) {
    const StreamId a = prog.new_stream(n);
    const StreamId b = prog.new_stream(n);
    prog.load(strided(in + static_cast<std::uint64_t>(s * n), n), a);
    prog.kernel(&k2, {a, b}, n / 16);
    prog.store(strided_store(out + static_cast<std::uint64_t>(s * n), n), b);
  }
  const RunStats stats = machine.run(prog);

  EXPECT_EQ(stats.timeline.busy_cycles(Lane::kKernel, stats.cycles),
            stats.kernel_busy_cycles);
  EXPECT_GE(stats.timeline.busy_cycles(Lane::kMemory, stats.cycles),
            stats.mem_busy_cycles);
  EXPECT_LE(stats.timeline.busy_cycles(Lane::kMemory, stats.cycles),
            stats.cycles);
  EXPECT_EQ(stats.timeline.overlap_cycles(stats.cycles),
            stats.overlap_cycles);
}

}  // namespace
}  // namespace smd::sim
