// Tests for the shared report formatters and the execution-trace renderer:
// these produce the bench output that EXPERIMENTS.md quotes, so their
// structure (headers, rows, derived values) is pinned here.
#include <gtest/gtest.h>

#include "src/core/report.h"
#include "src/core/run.h"
#include "src/core/schema.h"
#include "src/obs/registry.h"
#include "src/sim/trace.h"

namespace smd::core {
namespace {

VariantResult fake_result(Variant v) {
  VariantResult r;
  r.variant = v;
  r.name = variant_name(v);
  r.solution_gflops = 10.0;
  r.all_gflops = 12.5;
  r.mem_refs = 123456;
  r.time_ms = 0.5;
  r.ai_calculated = 9.9;
  r.ai_measured = 9.5;
  r.lrf_fraction = 0.94;
  r.srf_fraction = 0.03;
  r.mem_fraction = 0.03;
  r.n_central_blocks = 9156;
  r.n_neighbor_slots = 73344;
  return r;
}

TEST(Report, MachineTableListsPaperParameters) {
  const std::string s = format_machine_table(sim::MachineConfig::merrimac());
  for (const char* needle :
       {"stream cache banks", "scatter-add", "combining store",
        "address generators", "38.4 GB/s", "SRF size", "128"}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, VariantsTableHasAllFiveRows) {
  const std::string s = format_variants_table();
  for (const char* name :
       {"expanded", "fixed", "variable", "duplicated", "Pentium 4"}) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
}

TEST(Report, ArithmeticIntensityTableShowsBothColumns) {
  const std::string s =
      format_arithmetic_intensity_table({fake_result(Variant::kVariable)});
  EXPECT_NE(s.find("Calculated"), std::string::npos);
  EXPECT_NE(s.find("Measured"), std::string::npos);
  EXPECT_NE(s.find("9.9"), std::string::npos);
  EXPECT_NE(s.find("9.5"), std::string::npos);
}

TEST(Report, LocalityTablePercentagesRendered) {
  const std::string s = format_locality_table({fake_result(Variant::kFixed)});
  EXPECT_NE(s.find("94.0%"), std::string::npos);
  EXPECT_NE(s.find("%LRF"), std::string::npos);
}

TEST(Report, PerformanceTableIncludesBaselines) {
  const std::string s = format_performance_table(
      {fake_result(Variant::kExpanded)}, 3.27, 42.4);
  EXPECT_NE(s.find("Pentium 4"), std::string::npos);
  EXPECT_NE(s.find("3.27"), std::string::npos);
  EXPECT_NE(s.find("optimal"), std::string::npos);
  // Omitting the baselines drops those lines.
  const std::string bare =
      format_performance_table({fake_result(Variant::kExpanded)}, 0.0, 0.0);
  EXPECT_EQ(bare.find("Pentium 4"), std::string::npos);
}

TEST(Report, BlockingTableMarksMinimum) {
  BlockingModelParams params;
  params.variable_kernel_cycles = 1e5;
  params.variable_memory_cycles = 2.5e5;
  const BlockingModel model(params);
  const std::string s =
      format_blocking_table(model.sweep(0.8, 3.0, 5), model.minimum());
  EXPECT_NE(s.find("minimum"), std::string::npos);
  EXPECT_NE(s.find("molecules per cluster"), std::string::npos);
}

TEST(Trace, AsciiBarsReflectOccupancy) {
  sim::Timeline tl;
  tl.add(sim::Lane::kKernel, 0, 100, "k");   // fully busy
  tl.add(sim::Lane::kMemory, 0, 50, "m");    // half busy
  const std::string s = tl.ascii(100, 100);
  // One data row: kernel bar longer than memory bar.
  const auto line = s.substr(s.find('\n') + 1);
  const auto kernel_hashes = std::count(line.begin(), line.begin() + 20, '#');
  const auto memory_hashes = std::count(line.begin() + 20, line.end(), '#');
  EXPECT_GT(kernel_hashes, memory_hashes);
}

TEST(Trace, ZeroLengthIntervalKeptAsMarkerButNotCounted) {
  sim::Timeline tl;
  tl.add(sim::Lane::kKernel, 10, 10, "marker");
  // Zero-length intervals survive as markers but contribute no occupancy.
  EXPECT_EQ(tl.busy_cycles(sim::Lane::kKernel, 100), 0u);
  ASSERT_EQ(tl.intervals().size(), 1u);
  EXPECT_TRUE(tl.merged(sim::Lane::kKernel, 100).empty());
  // Inverted intervals are malformed and dropped outright.
  tl.add(sim::Lane::kKernel, 20, 15, "inverted");
  EXPECT_EQ(tl.intervals().size(), 1u);
}

TEST(ReportJson, MachineConfigRoundTripsThroughParser) {
  const obs::Json j =
      obs::Json::parse(to_json(sim::MachineConfig::merrimac()).dump(2));
  EXPECT_EQ(j.at("n_clusters").as_int(), 16);
  EXPECT_DOUBLE_EQ(j.at("peak_gflops").as_double(), 128.0);
  EXPECT_EQ(j.at("sdr_policy").as_string(), "transfer-scoped");
  EXPECT_EQ(j.at("mem").at("cache_banks").as_int(), 8);
  EXPECT_EQ(j.at("mem").at("combining_entries").as_int(), 8);
  EXPECT_EQ(j.at("sched").at("n_fpus").as_int(), 4);
}

TEST(ReportJson, RunStatsIncludesDerivedFractionsAndTimelineSummary) {
  sim::RunStats s;
  s.cycles = 1000;
  s.kernel_busy_cycles = 600;
  s.mem_busy_cycles = 500;
  s.overlap_cycles = 250;
  s.n_kernel_launches = 3;
  s.n_memory_ops = 5;
  s.timeline.add(sim::Lane::kKernel, 0, 600, "k");
  s.timeline.add(sim::Lane::kMemory, 350, 850, "m");
  const obs::Json j = obs::Json::parse(to_json(s).dump());
  EXPECT_EQ(j.at("cycles").as_int(), 1000);
  EXPECT_DOUBLE_EQ(j.at("kernel_occupancy").as_double(), 0.6);
  EXPECT_DOUBLE_EQ(j.at("mem_hidden_fraction").as_double(), 0.5);
  EXPECT_EQ(j.at("timeline").at("n_intervals").as_int(), 2);
  EXPECT_EQ(j.at("timeline").at("kernel_busy_cycles").as_int(), 600);
  EXPECT_EQ(j.at("timeline").at("overlap_cycles").as_int(), 250);
}

// The acceptance contract for `--json`: a bench record carries the machine
// config, per-variant results with GFLOPS and locality fractions, and the
// global telemetry counter snapshot -- and all of it survives a parse of
// the serialized form. Uses a real (small) simulated run so the numbers
// are the simulator's own, not hand-rolled.
TEST(ReportJson, BenchRecordParsesBackWithConfigCountersAndFractions) {
  obs::CounterRegistry::global().clear();
  ExperimentSetup setup;
  setup.n_molecules = 64;
  const Problem problem = Problem::make(setup);
  const sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  const VariantResult r = run_variant(problem, Variant::kVariable, cfg);

  const obs::Json rec =
      obs::Json::parse(bench_record("report_test", cfg, {r}).dump(2));

  EXPECT_EQ(rec.at("schema_version").as_int(), kBenchSchemaVersion);
  EXPECT_EQ(rec.at("bench").as_string(), "report_test");

  // Machine config.
  EXPECT_EQ(rec.at("machine").at("n_clusters").as_int(), 16);
  EXPECT_DOUBLE_EQ(rec.at("machine").at("peak_gflops").as_double(), 128.0);

  // Per-variant result: GFLOPS and the locality split.
  const obs::Json& res = rec.at("results").at(0);
  EXPECT_EQ(res.at("variant").as_string(), "variable");
  EXPECT_GT(res.at("solution_gflops").as_double(), 0.0);
  const obs::Json& loc = res.at("locality");
  const double lrf = loc.at("lrf").as_double();
  const double srf = loc.at("srf").as_double();
  const double memf = loc.at("mem").as_double();
  EXPECT_GT(lrf, 0.5);  // the paper's whole point: >90% of refs in LRF
  EXPECT_NEAR(lrf + srf + memf, 1.0, 1e-9);

  // Overlap accounting from the controller-populated timeline.
  const obs::Json& run = res.at("run");
  EXPECT_GT(run.at("cycles").as_int(), 0);
  const double hidden = run.at("mem_hidden_fraction").as_double();
  EXPECT_GE(hidden, 0.0);
  EXPECT_LE(hidden, 1.0);
  EXPECT_GT(run.at("timeline").at("n_intervals").as_int(), 0);

  // Telemetry snapshot: the run above must have bumped the sim counters.
  const obs::Json& counters = rec.at("telemetry").at("counters");
  EXPECT_GE(counters.at("sim.runs").as_int(), 1);
  EXPECT_GT(counters.at("sim.kernel_launches").as_int(), 0);
  EXPECT_GT(counters.at("mem.ops_issued").as_int(), 0);
}

}  // namespace
}  // namespace smd::core
