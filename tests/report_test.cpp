// Tests for the shared report formatters and the execution-trace renderer:
// these produce the bench output that EXPERIMENTS.md quotes, so their
// structure (headers, rows, derived values) is pinned here.
#include <gtest/gtest.h>

#include "src/core/report.h"
#include "src/core/run.h"
#include "src/sim/trace.h"

namespace smd::core {
namespace {

VariantResult fake_result(Variant v) {
  VariantResult r;
  r.variant = v;
  r.name = variant_name(v);
  r.solution_gflops = 10.0;
  r.all_gflops = 12.5;
  r.mem_refs = 123456;
  r.time_ms = 0.5;
  r.ai_calculated = 9.9;
  r.ai_measured = 9.5;
  r.lrf_fraction = 0.94;
  r.srf_fraction = 0.03;
  r.mem_fraction = 0.03;
  r.n_central_blocks = 9156;
  r.n_neighbor_slots = 73344;
  return r;
}

TEST(Report, MachineTableListsPaperParameters) {
  const std::string s = format_machine_table(sim::MachineConfig::merrimac());
  for (const char* needle :
       {"stream cache banks", "scatter-add", "combining store",
        "address generators", "38.4 GB/s", "SRF size", "128"}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, VariantsTableHasAllFiveRows) {
  const std::string s = format_variants_table();
  for (const char* name :
       {"expanded", "fixed", "variable", "duplicated", "Pentium 4"}) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
}

TEST(Report, ArithmeticIntensityTableShowsBothColumns) {
  const std::string s =
      format_arithmetic_intensity_table({fake_result(Variant::kVariable)});
  EXPECT_NE(s.find("Calculated"), std::string::npos);
  EXPECT_NE(s.find("Measured"), std::string::npos);
  EXPECT_NE(s.find("9.9"), std::string::npos);
  EXPECT_NE(s.find("9.5"), std::string::npos);
}

TEST(Report, LocalityTablePercentagesRendered) {
  const std::string s = format_locality_table({fake_result(Variant::kFixed)});
  EXPECT_NE(s.find("94.0%"), std::string::npos);
  EXPECT_NE(s.find("%LRF"), std::string::npos);
}

TEST(Report, PerformanceTableIncludesBaselines) {
  const std::string s = format_performance_table(
      {fake_result(Variant::kExpanded)}, 3.27, 42.4);
  EXPECT_NE(s.find("Pentium 4"), std::string::npos);
  EXPECT_NE(s.find("3.27"), std::string::npos);
  EXPECT_NE(s.find("optimal"), std::string::npos);
  // Omitting the baselines drops those lines.
  const std::string bare =
      format_performance_table({fake_result(Variant::kExpanded)}, 0.0, 0.0);
  EXPECT_EQ(bare.find("Pentium 4"), std::string::npos);
}

TEST(Report, BlockingTableMarksMinimum) {
  BlockingModelParams params;
  params.variable_kernel_cycles = 1e5;
  params.variable_memory_cycles = 2.5e5;
  const BlockingModel model(params);
  const std::string s =
      format_blocking_table(model.sweep(0.8, 3.0, 5), model.minimum());
  EXPECT_NE(s.find("minimum"), std::string::npos);
  EXPECT_NE(s.find("molecules per cluster"), std::string::npos);
}

TEST(Trace, AsciiBarsReflectOccupancy) {
  sim::Timeline tl;
  tl.add(sim::Lane::kKernel, 0, 100, "k");   // fully busy
  tl.add(sim::Lane::kMemory, 0, 50, "m");    // half busy
  const std::string s = tl.ascii(100, 100);
  // One data row: kernel bar longer than memory bar.
  const auto line = s.substr(s.find('\n') + 1);
  const auto kernel_hashes = std::count(line.begin(), line.begin() + 20, '#');
  const auto memory_hashes = std::count(line.begin() + 20, line.end(), '#');
  EXPECT_GT(kernel_hashes, memory_hashes);
}

TEST(Trace, ZeroLengthIntervalIgnored) {
  sim::Timeline tl;
  tl.add(sim::Lane::kKernel, 10, 10, "empty");
  EXPECT_EQ(tl.busy_cycles(sim::Lane::kKernel, 100), 0u);
  EXPECT_TRUE(tl.intervals().empty());
}

}  // namespace
}  // namespace smd::core
