// Tests for the static-analysis passes (src/analysis/): golden diagnostics
// for hand-built malformed IR and stream programs -- each asserting the
// stable check ID and location -- plus property tests that every built-in
// kernel variant, stream program and blocking scheme is lint-clean.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/check_stream.h"
#include "src/analysis/diag.h"
#include "src/analysis/verify_ir.h"
#include "src/core/blocking.h"
#include "src/core/kernels.h"
#include "src/core/layouts.h"
#include "src/core/program.h"
#include "src/core/run.h"
#include "src/md/water.h"
#include "src/mem/memsys.h"
#include "src/sim/config.h"
#include "src/sim/streamop.h"

namespace smd {
namespace {

using analysis::CheckFailure;
using analysis::Diagnostic;
using analysis::Diagnostics;
using analysis::Severity;
using kernel::Instr;
using kernel::KernelDef;
using kernel::Opcode;
using kernel::StreamDecl;
using kernel::StreamDir;

// ---------------------------------------------------------------------------
// Golden malformed-IR cases. Kernels are built by hand (not through
// KernelBuilder, whose build() already validates) so each case isolates
// exactly one defect.
// ---------------------------------------------------------------------------

/// Minimal well-formed skeleton: one input, one output, body copies a
/// record through. Cases below mutate one aspect of it.
KernelDef skeleton() {
  KernelDef k;
  k.name = "malformed";
  k.n_regs = 8;
  k.streams.push_back({"x", StreamDir::kIn, 1, false});
  k.streams.push_back({"y", StreamDir::kOut, 1, false});
  k.body.push_back({Opcode::kRead, /*dst=*/0, -1, -1, -1, /*stream=*/0, 1});
  k.body.push_back({Opcode::kWrite, -1, /*a=*/0, -1, -1, /*stream=*/1, 1});
  return k;
}

/// The one diagnostic with the given ID, asserting it exists.
const Diagnostic* expect_diag(const Diagnostics& d, const std::string& id) {
  const Diagnostic* found = d.find(id);
  EXPECT_NE(found, nullptr) << "expected " << id << " in:\n" << d.format();
  return found;
}

TEST(VerifyIr, UseBeforeDefOfNeverDefinedRegisterIsIR003) {
  KernelDef k = skeleton();
  // Register 5 is never defined anywhere but feeds the sum.
  k.body.insert(k.body.begin() + 1,
                {Opcode::kAdd, /*dst=*/1, /*a=*/0, /*b=*/5});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR003");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.unit, "malformed");
  EXPECT_EQ(g->loc.section, "body");
  EXPECT_EQ(g->loc.index, 1);
  EXPECT_THROW(analysis::require_valid_kernel(k), CheckFailure);
}

TEST(VerifyIr, RegisterOutOfRangeIsIR001) {
  KernelDef k = skeleton();
  k.body.insert(k.body.begin() + 1, {Opcode::kMov, /*dst=*/7, /*a=*/99});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR001");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.str(), "malformed:body[1]");
}

TEST(VerifyIr, StreamSlotOutOfRangeIsIR002) {
  KernelDef k = skeleton();
  k.body[0].stream = 3;  // only slots 0 and 1 are declared
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR002");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.str(), "malformed:body[0]");
}

TEST(VerifyIr, ReadOfOutputStreamIsDirectionMismatchIR005) {
  KernelDef k = skeleton();
  k.body[0].stream = 1;  // read targets the output decl
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR005");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.index, 0);
}

TEST(VerifyIr, CountRecordWordsMismatchIsIR006) {
  KernelDef k = skeleton();
  k.body[0].count = 2;  // decl says 1 word per record
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR006");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.str(), "malformed:body[0]");
}

TEST(VerifyIr, ConditionalAccessOfNonConditionalDeclIsIR007) {
  KernelDef k = skeleton();
  k.prologue.push_back({Opcode::kConst, /*dst=*/4});  // predicate
  k.body[0] = {Opcode::kReadCond, /*dst=*/0, -1, -1, /*c=*/4, /*stream=*/0, 1};
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR007");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.section, "body");
}

TEST(VerifyIr, PlainAccessOfConditionalDeclIsIR008) {
  KernelDef k = skeleton();
  k.streams[0].conditional = true;  // decl conditional, access plain
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR008");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(VerifyIr, UndefinedPredicateOnConditionalAccessIsIR009) {
  KernelDef k = skeleton();
  k.streams[0].conditional = true;
  // Predicate register 4 is never defined -- SIMD clusters cannot evaluate
  // the condition.
  k.body[0] = {Opcode::kReadCond, /*dst=*/0, -1, -1, /*c=*/4, /*stream=*/0, 1};
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR009");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.str(), "malformed:body[0]");
}

TEST(VerifyIr, DoubleBroadcastOfOneStreamIsIR010) {
  KernelDef k = skeleton();
  k.body[0].op = Opcode::kReadBcast;
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kReadBcast, /*dst=*/1, -1, -1, -1,
                      /*stream=*/0, 1});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR010");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(VerifyIr, NonPositiveStreamCountIsIR011) {
  KernelDef k = skeleton();
  k.body[0].count = 0;
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR011");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(VerifyIr, DeadWriteIsIR012Warning) {
  KernelDef k = skeleton();
  // Register 2 is computed but feeds nothing.
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kAdd, /*dst=*/2, /*a=*/0, /*b=*/0});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR012");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_EQ(d.errors(), 0);  // lint only -- pre-flight must not throw
  EXPECT_NO_THROW(analysis::require_valid_kernel(k));
}

TEST(VerifyIr, UnusedStreamDeclIsIR013Warning) {
  KernelDef k = skeleton();
  k.streams.push_back({"ghost", StreamDir::kIn, 1, false});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR013");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_EQ(g->loc.index, -1);  // about the unit, not an instruction
}

TEST(VerifyIr, NonPositiveBlockLenIsIR014) {
  KernelDef k = skeleton();
  k.block_len = 0;
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR014");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(VerifyIr, LrfPressureBeyondCapacityIsIR015) {
  KernelDef k = skeleton();
  analysis::VerifyOptions opts;
  opts.lrf_words = 4;  // force IR015 by keeping 6+ registers live at once
  for (int r = 1; r <= 6; ++r) {
    k.body.insert(k.body.begin() + 1,
                  Instr{Opcode::kAdd, /*dst=*/r, /*a=*/0, /*b=*/0});
  }
  Instr sum{Opcode::kAdd, /*dst=*/7, /*a=*/1, /*b=*/2};
  k.body.insert(k.body.end() - 1, sum);
  for (int r = 3; r <= 6; ++r) {
    k.body.insert(k.body.end() - 1,
                  Instr{Opcode::kAdd, /*dst=*/7, /*a=*/7, /*b=*/r});
  }
  k.body.back().a = 7;  // write out the sum
  const Diagnostics d = analysis::verify_kernel(k, opts);
  const Diagnostic* g = expect_diag(d, "IR015");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_NE(d.find("IR016"), nullptr);  // pressure report always present
}

// ---------------------------------------------------------------------------
// Stream-program checker golden cases.
// ---------------------------------------------------------------------------

/// Copy kernel over 1-word records, slot 0 -> slot 1.
KernelDef copy_kernel() { return skeleton(); }

mem::MemOpDesc strided(mem::MemOpKind kind, std::uint64_t base,
                       std::int64_t n_records, int record_words = 1) {
  mem::MemOpDesc d;
  d.kind = kind;
  d.base = base;
  d.n_records = n_records;
  d.record_words = record_words;
  return d;
}

TEST(CheckStream, ReadOfNeverProducedSlotIsSP002) {
  const KernelDef k = copy_kernel();
  sim::StreamProgram prog;
  const sim::StreamId s_in = prog.new_stream(64);
  const sim::StreamId s_out = prog.new_stream(64);
  prog.kernel(&k, {s_in, s_out}, /*rounds=*/1);  // nothing loaded s_in
  analysis::StreamCheckOptions opts;
  opts.program_name = "orphan_read";
  opts.n_clusters = 1;
  const Diagnostics d = analysis::check_stream_program(prog, opts);
  const Diagnostic* g = expect_diag(d, "SP002");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.unit, "orphan_read");
  EXPECT_EQ(g->loc.index, 0);
  EXPECT_THROW(analysis::require_valid_stream_program(prog, opts),
               CheckFailure);
}

TEST(CheckStream, SlotOutOfRangeIsSP001) {
  sim::StreamProgram prog;
  prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), /*dst=*/5);
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP001");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, TransferBeyondSlotCapacityIsSP007) {
  sim::StreamProgram prog;
  const sim::StreamId s = prog.new_stream(4);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), s);  // 8 words into 4
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP007");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, TransferBeyondMemoryExtentIsSP008) {
  sim::StreamProgram prog;
  const sim::StreamId s = prog.new_stream(64);
  prog.load(strided(mem::MemOpKind::kLoadStrided, /*base=*/90, 8), s);
  analysis::StreamCheckOptions opts;
  opts.memory_words = 64;
  const Diagnostics d = analysis::check_stream_program(prog, opts);
  const Diagnostic* g = expect_diag(d, "SP008");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, DuplicateRecordInOnePlainScatterIsSP010) {
  sim::StreamProgram prog;
  const sim::StreamId s = prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 4), s);
  mem::MemOpDesc scatter = strided(mem::MemOpKind::kStoreScatter, 100, 4);
  scatter.indices = {0, 1, 1, 3};  // record 1 stored twice: lost update
  prog.store(scatter, s);
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP010");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, IndexStreamLengthMismatchIsSP009) {
  sim::StreamProgram prog;
  const sim::StreamId s = prog.new_stream(16);
  mem::MemOpDesc gather = strided(mem::MemOpKind::kLoadGather, 0, 4);
  gather.indices = {0, 1};  // 2 indices for 4 records
  prog.load(gather, s);
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP009");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, ConcurrentOverlappingPlainStoresAreSP011) {
  // Two store chains with no dependence path between them target the same
  // words: the controller may issue them concurrently in either order.
  sim::StreamProgram prog;
  const sim::StreamId a = prog.new_stream(16);
  const sim::StreamId b = prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), a);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 16, 8), b);
  prog.store(strided(mem::MemOpKind::kStoreStrided, 100, 8), a);
  prog.store(strided(mem::MemOpKind::kStoreStrided, 104, 8), b);  // overlaps
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP011");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  // The message names the concrete colliding word address (first overlap
  // at word 104).
  EXPECT_NE(g->message.find("104"), std::string::npos) << g->message;
}

TEST(CheckStream, ConcurrentScatterAddsAreExemptFromSP011) {
  // Same shape as above but both stores combine in the scatter-add units:
  // the paper's Section 4 guarantee makes the collision safe.
  sim::StreamProgram prog;
  const sim::StreamId a = prog.new_stream(16);
  const sim::StreamId b = prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), a);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 16, 8), b);
  mem::MemOpDesc sa = strided(mem::MemOpKind::kScatterAdd, 100, 8);
  sa.indices = {0, 1, 2, 3, 4, 5, 6, 7};
  mem::MemOpDesc sb = strided(mem::MemOpKind::kScatterAdd, 104, 8);
  sb.indices = {0, 1, 2, 3, 4, 5, 6, 7};
  prog.store(sa, a);
  prog.store(sb, b);
  const Diagnostics d = analysis::check_stream_program(prog);
  EXPECT_EQ(d.find("SP011"), nullptr) << d.format();
  EXPECT_EQ(d.errors(), 0) << d.format();
}

TEST(CheckStream, ConcurrentReadWriteOverlapIsSP012) {
  sim::StreamProgram prog;
  const sim::StreamId a = prog.new_stream(16);
  const sim::StreamId b = prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), a);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 100, 8), b);  // reads 100..
  prog.store(strided(mem::MemOpKind::kStoreStrided, 100, 8), a);  // writes 100..
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP012");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

// ---------------------------------------------------------------------------
// Scatter-assignment race detection (blocking schemes).
// ---------------------------------------------------------------------------

analysis::ScatterAssignment hazardous_assignment(bool combining) {
  analysis::ScatterAssignment a;
  a.name = "hazard";
  a.n_rows = 9;  // rows 0..7 + trash row 8
  a.trash_row = 8;
  a.combining = combining;
  a.base = 1000;
  a.record_words = 9;
  a.block_rows = {
      {0, 1, 2, 3},
      {4, 5, 5, 6},  // lanes 1 and 2 collide on row 5
      {7, 8, 8, 8},  // trash-row padding: never a collision
  };
  return a;
}

TEST(CheckScatter, CollisionWithoutCombiningIsSP013NamingBlockAndAddress) {
  const Diagnostics d =
      analysis::check_scatter_assignment(hazardous_assignment(false));
  const Diagnostic* g = expect_diag(d, "SP013");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.index, 1);  // the colliding block
  // Concrete colliding pair: block, both lanes, row, word address
  // (base 1000 + row 5 * 9 words = 1045).
  EXPECT_NE(g->message.find("block 1"), std::string::npos) << g->message;
  EXPECT_NE(g->message.find("lanes 1 and 2"), std::string::npos) << g->message;
  EXPECT_NE(g->message.find("1045"), std::string::npos) << g->message;
}

TEST(CheckScatter, CollisionUnderCombiningIsSP014Note) {
  const Diagnostics d =
      analysis::check_scatter_assignment(hazardous_assignment(true));
  EXPECT_EQ(d.find("SP013"), nullptr) << d.format();
  EXPECT_EQ(d.errors(), 0) << d.format();
  const Diagnostic* g = expect_diag(d, "SP014");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kNote);
}

TEST(CheckScatter, RowOutOfRangeIsSP016) {
  analysis::ScatterAssignment a = hazardous_assignment(true);
  a.block_rows[0][0] = 42;  // beyond n_rows
  const Diagnostics d = analysis::check_scatter_assignment(a);
  const Diagnostic* g = expect_diag(d, "SP016");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

// ---------------------------------------------------------------------------
// Property tests: everything the repo ships is lint-clean.
// ---------------------------------------------------------------------------

TEST(Property, EveryBuiltinKernelVariantIsLintClean) {
  const md::WaterModel& model = md::spc();
  std::vector<KernelDef> defs;
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    defs.push_back(core::build_water_kernel(v, model));
  }
  defs.push_back(core::build_expanded_energy_kernel(model));
  for (const md::WaterModel* m : {&md::spc(), &md::tip5p(), &md::ppc()}) {
    defs.push_back(core::build_multisite_kernel(*m));
  }
  defs.push_back(core::build_blocked_kernel(model, 1.0, 64));
  for (const KernelDef& def : defs) {
    const Diagnostics d = analysis::verify_kernel(def);
    EXPECT_EQ(d.errors(), 0) << def.name << ":\n" << d.format();
    EXPECT_EQ(d.warnings(), 0) << def.name << ":\n" << d.format();
  }
}

TEST(Property, EveryVariantStreamProgramIsLintClean) {
  core::ExperimentSetup setup;
  setup.n_molecules = 48;
  const core::Problem problem = core::Problem::make(setup);
  const sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    core::LayoutOptions lopts;
    lopts.n_clusters = cfg.n_clusters;
    lopts.srf_words = cfg.srf_words;
    const core::VariantLayout layout =
        core::build_layout(v, problem.system, problem.half_list, lopts);
    const KernelDef kdef =
        core::build_water_kernel(v, problem.system.model());
    mem::GlobalMemory memory;
    const core::ProblemImage image =
        core::upload_system(memory, problem.system);
    const sim::StreamProgram program =
        core::build_program(memory, image, layout, kdef);
    analysis::StreamCheckOptions opts;
    opts.program_name = core::variant_name(v);
    opts.n_clusters = cfg.n_clusters;
    opts.srf_words = cfg.srf_words;
    opts.memory_words = memory.size();
    const Diagnostics d = analysis::check_stream_program(program, opts);
    EXPECT_EQ(d.errors(), 0) << core::variant_name(v) << ":\n" << d.format();
    EXPECT_EQ(d.warnings(), 0) << core::variant_name(v) << ":\n" << d.format();
  }
}

TEST(Property, EveryBuiltinBlockingSchemeIsCollisionFree) {
  core::ExperimentSetup setup;
  setup.n_molecules = 48;
  const core::Problem problem = core::Problem::make(setup);
  for (int cells : core::builtin_blocking_cells()) {
    const core::BlockingScheme scheme =
        core::build_blocking_scheme(problem.system, cells);
    const Diagnostics d =
        analysis::check_scatter_assignment(scheme.to_scatter_assignment());
    EXPECT_EQ(d.errors(), 0) << scheme.name << ":\n" << d.format();
    EXPECT_EQ(d.warnings(), 0) << scheme.name << ":\n" << d.format();
  }
}

}  // namespace
}  // namespace smd
