// Tests for the static-analysis passes (src/analysis/): golden diagnostics
// for hand-built malformed IR and stream programs -- each asserting the
// stable check ID and location -- plus property tests that every built-in
// kernel variant, stream program and blocking scheme is lint-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/check_stream.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/diag.h"
#include "src/analysis/verify_ir.h"
#include "src/core/blocking.h"
#include "src/core/kernels.h"
#include "src/core/layouts.h"
#include "src/core/program.h"
#include "src/core/run.h"
#include "src/md/water.h"
#include "src/mem/memsys.h"
#include "src/sim/config.h"
#include "src/sim/streamop.h"

namespace smd {
namespace {

using analysis::CheckFailure;
using analysis::Diagnostic;
using analysis::Diagnostics;
using analysis::Severity;
using kernel::Instr;
using kernel::KernelDef;
using kernel::Opcode;
using kernel::StreamDecl;
using kernel::StreamDir;

// ---------------------------------------------------------------------------
// Golden malformed-IR cases. Kernels are built by hand (not through
// KernelBuilder, whose build() already validates) so each case isolates
// exactly one defect.
// ---------------------------------------------------------------------------

/// Minimal well-formed skeleton: one input, one output, body copies a
/// record through. Cases below mutate one aspect of it.
KernelDef skeleton() {
  KernelDef k;
  k.name = "malformed";
  k.n_regs = 8;
  k.streams.push_back({"x", StreamDir::kIn, 1, false});
  k.streams.push_back({"y", StreamDir::kOut, 1, false});
  k.body.push_back({Opcode::kRead, /*dst=*/0, -1, -1, -1, /*stream=*/0, 1});
  k.body.push_back({Opcode::kWrite, -1, /*a=*/0, -1, -1, /*stream=*/1, 1});
  return k;
}

/// The one diagnostic with the given ID, asserting it exists.
const Diagnostic* expect_diag(const Diagnostics& d, const std::string& id) {
  const Diagnostic* found = d.find(id);
  EXPECT_NE(found, nullptr) << "expected " << id << " in:\n" << d.format();
  return found;
}

TEST(VerifyIr, UseBeforeDefOfNeverDefinedRegisterIsIR003) {
  KernelDef k = skeleton();
  // Register 5 is never defined anywhere but feeds the sum.
  k.body.insert(k.body.begin() + 1,
                {Opcode::kAdd, /*dst=*/1, /*a=*/0, /*b=*/5});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR003");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.unit, "malformed");
  EXPECT_EQ(g->loc.section, "body");
  EXPECT_EQ(g->loc.index, 1);
  EXPECT_THROW(analysis::require_valid_kernel(k), CheckFailure);
}

TEST(VerifyIr, RegisterOutOfRangeIsIR001) {
  KernelDef k = skeleton();
  k.body.insert(k.body.begin() + 1, {Opcode::kMov, /*dst=*/7, /*a=*/99});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR001");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.str(), "malformed:body[1]");
}

TEST(VerifyIr, StreamSlotOutOfRangeIsIR002) {
  KernelDef k = skeleton();
  k.body[0].stream = 3;  // only slots 0 and 1 are declared
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR002");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.str(), "malformed:body[0]");
}

TEST(VerifyIr, ReadOfOutputStreamIsDirectionMismatchIR005) {
  KernelDef k = skeleton();
  k.body[0].stream = 1;  // read targets the output decl
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR005");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.index, 0);
}

TEST(VerifyIr, CountRecordWordsMismatchIsIR006) {
  KernelDef k = skeleton();
  k.body[0].count = 2;  // decl says 1 word per record
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR006");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.str(), "malformed:body[0]");
}

TEST(VerifyIr, ConditionalAccessOfNonConditionalDeclIsIR007) {
  KernelDef k = skeleton();
  k.prologue.push_back({Opcode::kConst, /*dst=*/4});  // predicate
  k.body[0] = {Opcode::kReadCond, /*dst=*/0, -1, -1, /*c=*/4, /*stream=*/0, 1};
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR007");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.section, "body");
}

TEST(VerifyIr, PlainAccessOfConditionalDeclIsIR008) {
  KernelDef k = skeleton();
  k.streams[0].conditional = true;  // decl conditional, access plain
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR008");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(VerifyIr, UndefinedPredicateOnConditionalAccessIsIR009) {
  KernelDef k = skeleton();
  k.streams[0].conditional = true;
  // Predicate register 4 is never defined -- SIMD clusters cannot evaluate
  // the condition.
  k.body[0] = {Opcode::kReadCond, /*dst=*/0, -1, -1, /*c=*/4, /*stream=*/0, 1};
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR009");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.str(), "malformed:body[0]");
}

TEST(VerifyIr, DoubleBroadcastOfOneStreamIsIR010) {
  KernelDef k = skeleton();
  k.body[0].op = Opcode::kReadBcast;
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kReadBcast, /*dst=*/1, -1, -1, -1,
                      /*stream=*/0, 1});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR010");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(VerifyIr, NonPositiveStreamCountIsIR011) {
  KernelDef k = skeleton();
  k.body[0].count = 0;
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR011");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(VerifyIr, DeadWriteIsIR012Warning) {
  KernelDef k = skeleton();
  // Register 2 is computed but feeds nothing.
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kAdd, /*dst=*/2, /*a=*/0, /*b=*/0});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR012");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_EQ(d.errors(), 0);  // lint only -- pre-flight must not throw
  EXPECT_NO_THROW(analysis::require_valid_kernel(k));
}

TEST(VerifyIr, UnusedStreamDeclIsIR013Warning) {
  KernelDef k = skeleton();
  k.streams.push_back({"ghost", StreamDir::kIn, 1, false});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR013");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_EQ(g->loc.index, -1);  // about the unit, not an instruction
}

TEST(VerifyIr, NonPositiveBlockLenIsIR014) {
  KernelDef k = skeleton();
  k.block_len = 0;
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR014");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(VerifyIr, LrfPressureBeyondCapacityIsIR015) {
  KernelDef k = skeleton();
  analysis::VerifyOptions opts;
  opts.lrf_words = 4;  // force IR015 by keeping 6+ registers live at once
  for (int r = 1; r <= 6; ++r) {
    k.body.insert(k.body.begin() + 1,
                  Instr{Opcode::kAdd, /*dst=*/r, /*a=*/0, /*b=*/0});
  }
  Instr sum{Opcode::kAdd, /*dst=*/7, /*a=*/1, /*b=*/2};
  k.body.insert(k.body.end() - 1, sum);
  for (int r = 3; r <= 6; ++r) {
    k.body.insert(k.body.end() - 1,
                  Instr{Opcode::kAdd, /*dst=*/7, /*a=*/7, /*b=*/r});
  }
  k.body.back().a = 7;  // write out the sum
  const Diagnostics d = analysis::verify_kernel(k, opts);
  const Diagnostic* g = expect_diag(d, "IR015");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_NE(d.find("IR016"), nullptr);  // pressure report always present
}

// ---------------------------------------------------------------------------
// Golden cases for the dataflow-backed semantic checks IR017-IR024.
// ---------------------------------------------------------------------------

TEST(VerifyIr, DeadOverwrittenDefinitionIsIR017) {
  KernelDef k = skeleton();
  // r2 is defined at body[1], overwritten at body[2] before any use, and
  // the second definition IS consumed -- so this is IR017 (dead instance
  // of a used register), not IR012 (never-read register).
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kAdd, /*dst=*/2, /*a=*/0, /*b=*/0});
  k.body.insert(k.body.begin() + 2,
                Instr{Opcode::kSub, /*dst=*/2, /*a=*/0, /*b=*/0});
  k.body.back().a = 2;  // write r2
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR017");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_EQ(g->loc.str(), "malformed:body[1]");
}

TEST(VerifyIr, RedundantRecomputationIsIR018) {
  KernelDef k = skeleton();
  k.n_regs = 16;
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kAdd, /*dst=*/2, /*a=*/0, /*b=*/0});
  k.body.insert(k.body.begin() + 2,
                Instr{Opcode::kAdd, /*dst=*/3, /*a=*/0, /*b=*/0});  // dup
  k.body.insert(k.body.begin() + 3,
                Instr{Opcode::kMul, /*dst=*/4, /*a=*/2, /*b=*/3});
  k.body.back().a = 4;
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR018");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);  // costs an FPU slot
  EXPECT_EQ(g->loc.str(), "malformed:body[2]");
  // The message names the register still holding the value.
  EXPECT_NE(g->message.find("register 2"), std::string::npos) << g->message;
}

TEST(VerifyIr, ConstantFoldableOpIsIR019) {
  KernelDef k = skeleton();
  Instr cst{Opcode::kConst, /*dst=*/1};
  cst.imm = 2.0;
  k.body.insert(k.body.begin() + 1, cst);
  k.body.insert(k.body.begin() + 2,
                Instr{Opcode::kAdd, /*dst=*/2, /*a=*/1, /*b=*/1});
  k.body.back().a = 2;
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR019");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);  // in the body: paid per iter
  EXPECT_EQ(g->loc.str(), "malformed:body[2]");
}

TEST(VerifyIr, CopyOfCopyIsIR020) {
  KernelDef k = skeleton();
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kMov, /*dst=*/1, /*a=*/0});
  k.body.insert(k.body.begin() + 2,
                Instr{Opcode::kMov, /*dst=*/2, /*a=*/1});  // copy of a copy
  k.body.back().a = 2;
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR020");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kNote);
  EXPECT_EQ(g->loc.str(), "malformed:body[2]");
  EXPECT_EQ(d.warnings(), 0) << d.format();  // note-only lint
}

TEST(VerifyIr, StreamReadWhoseWordsAreNeverUsedIsIR021) {
  KernelDef k = skeleton();
  k.streams.push_back({"junk", StreamDir::kIn, 2, false});
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kRead, /*dst=*/4, -1, -1, -1, /*stream=*/2, 2});
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR021");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_EQ(g->loc.str(), "malformed:body[1]");
}

TEST(VerifyIr, ExactLivenessPressureBeyondLrfIsIR022) {
  // Same shape as the IR015 interval-pressure case: six sums live at once
  // against a 4-word bound. The exact-liveness count must agree.
  KernelDef k = skeleton();
  analysis::VerifyOptions opts;
  opts.lrf_words = 4;
  for (int r = 1; r <= 6; ++r) {
    k.body.insert(k.body.begin() + 1,
                  Instr{Opcode::kAdd, /*dst=*/r, /*a=*/0, /*b=*/0});
  }
  Instr sum{Opcode::kAdd, /*dst=*/7, /*a=*/1, /*b=*/2};
  k.body.insert(k.body.end() - 1, sum);
  for (int r = 3; r <= 6; ++r) {
    k.body.insert(k.body.end() - 1,
                  Instr{Opcode::kAdd, /*dst=*/7, /*a=*/7, /*b=*/r});
  }
  k.body.back().a = 7;
  const Diagnostics d = analysis::verify_kernel(k, opts);
  const Diagnostic* g = expect_diag(d, "IR022");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
}

TEST(VerifyIr, ConditionalReadOverwritingItsOwnPredicateIsIR023) {
  KernelDef k = skeleton();
  k.streams[0].conditional = true;
  k.prologue.push_back({Opcode::kConst, /*dst=*/0});
  // Predicate r0 lies inside the destination range [0, 1): a taken read
  // destroys the predicate the untaken clusters still carry.
  k.body[0] = {Opcode::kReadCond, /*dst=*/0, -1, -1, /*c=*/0, /*stream=*/0, 1};
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR023");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_EQ(g->loc.str(), "malformed:body[0]");
}

TEST(VerifyIr, ProvablyConstantPredicateIsIR024) {
  KernelDef k = skeleton();
  k.streams[0].conditional = true;
  Instr pred{Opcode::kConst, /*dst=*/4};
  pred.imm = 1.0;
  k.prologue.push_back(pred);
  k.body[0] = {Opcode::kReadCond, /*dst=*/0, -1, -1, /*c=*/4, /*stream=*/0, 1};
  const Diagnostics d = analysis::verify_kernel(k);
  const Diagnostic* g = expect_diag(d, "IR024");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kWarning);
  EXPECT_NE(g->message.find("always"), std::string::npos) << g->message;
}

// ---------------------------------------------------------------------------
// Dataflow engine unit tests: the semantics the checks above rely on.
// ---------------------------------------------------------------------------

TEST(Dataflow, RegistersStartAsConstantZero) {
  // r3 is never defined anywhere; the interpreter zero-initializes, so the
  // lattice must carry it as the constant 0.0 in every section.
  KernelDef k = skeleton();
  const analysis::KernelDataflow dfa(k);
  for (const kernel::Section s : analysis::kSectionOrder) {
    const analysis::ConstEnv& env = dfa.const_env_at_entry(s);
    ASSERT_TRUE(env[3].has_value());
    EXPECT_EQ(*env[3], 0.0);
  }
}

TEST(Dataflow, ConditionalReadIsAPartialKill) {
  KernelDef k = skeleton();
  k.streams[0].conditional = true;
  k.prologue.push_back({Opcode::kConst, /*dst=*/4});
  k.prologue.push_back({Opcode::kConst, /*dst=*/0});  // prior def of r0
  k.body[0] = {Opcode::kReadCond, /*dst=*/0, -1, -1, /*c=*/4, /*stream=*/0, 1};
  const analysis::KernelDataflow dfa(k);
  // Both the prologue kConst and the conditional read reach the write at
  // body[1]: untaken clusters keep the old value.
  const auto defs =
      dfa.reaching_defs(kernel::Section::kBody, /*idx=*/1, /*reg=*/0);
  EXPECT_GE(defs.size(), 2u);
  // And the read's destination must be live BEFORE the read (merge use).
  EXPECT_TRUE(dfa.live_before(kernel::Section::kBody, 0).test(0));
}

TEST(Dataflow, RoundsBackEdgeDefeatsBodyConstants) {
  // r2 = r2 + 1 in the body: constant 1.0 on the first iteration, but the
  // back edge (body -> outer_post -> outer_pre -> body) feeds the sum back
  // around, so the lattice must NOT call it constant.
  KernelDef k = skeleton();
  Instr one{Opcode::kConst, /*dst=*/1};
  one.imm = 1.0;
  k.prologue.push_back(one);
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kAdd, /*dst=*/2, /*a=*/2, /*b=*/1});
  k.body.back().a = 2;
  const analysis::KernelDataflow dfa(k);
  analysis::ConstEnv env = dfa.const_env_at_entry(kernel::Section::kBody);
  EXPECT_FALSE(env[2].has_value());
  const Diagnostics d = analysis::verify_kernel(k);
  EXPECT_EQ(d.find("IR019"), nullptr) << d.format();
}

TEST(Dataflow, LiveRangesAndPressureOnAStraightLineBody) {
  // read r0; r1 = r0+r0; r2 = r1+r0; write r2 -- peak 2 live registers
  // (r0+r1 between the adds).
  KernelDef k = skeleton();
  k.body.insert(k.body.begin() + 1,
                Instr{Opcode::kAdd, /*dst=*/1, /*a=*/0, /*b=*/0});
  k.body.insert(k.body.begin() + 2,
                Instr{Opcode::kAdd, /*dst=*/2, /*a=*/1, /*b=*/0});
  k.body.back().a = 2;
  const analysis::KernelDataflow dfa(k);
  EXPECT_EQ(dfa.max_live_pressure(), 2);
  EXPECT_EQ(dfa.max_live_pressure(), analysis::dynamic_lrf_pressure(k));
  const auto ranges = dfa.live_ranges();
  // Exactly r0, r1, r2 are ever live.
  EXPECT_EQ(ranges.size(), 3u);
}

// ---------------------------------------------------------------------------
// Deterministic diagnostics ordering (golden).
// ---------------------------------------------------------------------------

TEST(Diag, RenderOrderIsDeterministicRegardlessOfInsertion) {
  Diagnostics d;
  // Inserted deliberately out of (unit, section, index, id) order.
  d.warn("IR018", {"zeta", "body", 4}, "later unit");
  d.error("IR003", {"alpha", "body", 2}, "alpha body two");
  d.note("IR016", {"alpha", "prologue", 0}, "alpha prologue");
  d.warn("IR012", {"alpha", "body", 2}, "alpha body two, lower id");
  // Ties on (unit, section, index) break on the check ID's lexicographic
  // order: IR003 < IR012.
  const std::string golden =
      "error IR003 at alpha:body[2]: alpha body two\n"
      "warning IR012 at alpha:body[2]: alpha body two, lower id\n"
      "note IR016 at alpha:prologue[0]: alpha prologue\n"
      "warning IR018 at zeta:body[4]: later unit\n";
  EXPECT_EQ(d.format(), golden);
  // all() preserves insertion order for pass-order consumers.
  EXPECT_EQ(d.all().front().id, "IR018");
  // JSON rendering uses the same deterministic order.
  const std::string j = d.to_json().dump();
  EXPECT_LT(j.find("IR003"), j.find("IR012"));
  EXPECT_LT(j.find("IR012"), j.find("IR016"));
  EXPECT_LT(j.find("IR016"), j.find("IR018"));
}

// ---------------------------------------------------------------------------
// Doc-drift guard: the DESIGN.md check catalogue and known_check_ids()
// must match one-to-one.
// ---------------------------------------------------------------------------

TEST(Diag, EveryCheckIdAppearsExactlyOnceInDesignCatalogue) {
  const std::string path = std::string(SMD_SOURCE_DIR) + "/DESIGN.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::map<std::string, int> seen;  // catalogue-row IDs -> occurrences
  std::string line;
  while (std::getline(in, line)) {
    // Catalogue rows are Markdown table rows of the form "| IR001 | ...".
    if (line.rfind("| ", 0) != 0) continue;
    const std::string cell = line.substr(2, line.find(" |", 2) - 2);
    if (cell.size() < 5) continue;
    const std::string prefix = cell.substr(0, 2);
    if (prefix != "IR" && prefix != "SP" && prefix != "MC") continue;
    if (!std::all_of(cell.begin() + 2, cell.end(),
                     [](unsigned char ch) { return std::isdigit(ch); })) {
      continue;
    }
    ++seen[cell];
  }
  for (const std::string& id : analysis::known_check_ids()) {
    EXPECT_EQ(seen[id], 1) << id << " must appear exactly once in the "
                           << "DESIGN.md catalogue";
    seen.erase(id);
  }
  for (const auto& [id, n] : seen) {
    ADD_FAILURE() << "DESIGN.md catalogues " << id << " (" << n
                  << "x) but known_check_ids() does not list it";
  }
}

// ---------------------------------------------------------------------------
// Stream-program checker golden cases.
// ---------------------------------------------------------------------------

/// Copy kernel over 1-word records, slot 0 -> slot 1.
KernelDef copy_kernel() { return skeleton(); }

mem::MemOpDesc strided(mem::MemOpKind kind, std::uint64_t base,
                       std::int64_t n_records, int record_words = 1) {
  mem::MemOpDesc d;
  d.kind = kind;
  d.base = base;
  d.n_records = n_records;
  d.record_words = record_words;
  return d;
}

TEST(CheckStream, ReadOfNeverProducedSlotIsSP002) {
  const KernelDef k = copy_kernel();
  sim::StreamProgram prog;
  const sim::StreamId s_in = prog.new_stream(64);
  const sim::StreamId s_out = prog.new_stream(64);
  prog.kernel(&k, {s_in, s_out}, /*rounds=*/1);  // nothing loaded s_in
  analysis::StreamCheckOptions opts;
  opts.program_name = "orphan_read";
  opts.n_clusters = 1;
  const Diagnostics d = analysis::check_stream_program(prog, opts);
  const Diagnostic* g = expect_diag(d, "SP002");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.unit, "orphan_read");
  EXPECT_EQ(g->loc.index, 0);
  EXPECT_THROW(analysis::require_valid_stream_program(prog, opts),
               CheckFailure);
}

TEST(CheckStream, SlotOutOfRangeIsSP001) {
  sim::StreamProgram prog;
  prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), /*dst=*/5);
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP001");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, TransferBeyondSlotCapacityIsSP007) {
  sim::StreamProgram prog;
  const sim::StreamId s = prog.new_stream(4);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), s);  // 8 words into 4
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP007");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, TransferBeyondMemoryExtentIsSP008) {
  sim::StreamProgram prog;
  const sim::StreamId s = prog.new_stream(64);
  prog.load(strided(mem::MemOpKind::kLoadStrided, /*base=*/90, 8), s);
  analysis::StreamCheckOptions opts;
  opts.memory_words = 64;
  const Diagnostics d = analysis::check_stream_program(prog, opts);
  const Diagnostic* g = expect_diag(d, "SP008");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, DuplicateRecordInOnePlainScatterIsSP010) {
  sim::StreamProgram prog;
  const sim::StreamId s = prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 4), s);
  mem::MemOpDesc scatter = strided(mem::MemOpKind::kStoreScatter, 100, 4);
  scatter.indices = {0, 1, 1, 3};  // record 1 stored twice: lost update
  prog.store(scatter, s);
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP010");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, IndexStreamLengthMismatchIsSP009) {
  sim::StreamProgram prog;
  const sim::StreamId s = prog.new_stream(16);
  mem::MemOpDesc gather = strided(mem::MemOpKind::kLoadGather, 0, 4);
  gather.indices = {0, 1};  // 2 indices for 4 records
  prog.load(gather, s);
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP009");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

TEST(CheckStream, ConcurrentOverlappingPlainStoresAreSP011) {
  // Two store chains with no dependence path between them target the same
  // words: the controller may issue them concurrently in either order.
  sim::StreamProgram prog;
  const sim::StreamId a = prog.new_stream(16);
  const sim::StreamId b = prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), a);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 16, 8), b);
  prog.store(strided(mem::MemOpKind::kStoreStrided, 100, 8), a);
  prog.store(strided(mem::MemOpKind::kStoreStrided, 104, 8), b);  // overlaps
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP011");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  // The message names the concrete colliding word address (first overlap
  // at word 104).
  EXPECT_NE(g->message.find("104"), std::string::npos) << g->message;
}

TEST(CheckStream, ConcurrentScatterAddsAreExemptFromSP011) {
  // Same shape as above but both stores combine in the scatter-add units:
  // the paper's Section 4 guarantee makes the collision safe.
  sim::StreamProgram prog;
  const sim::StreamId a = prog.new_stream(16);
  const sim::StreamId b = prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), a);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 16, 8), b);
  mem::MemOpDesc sa = strided(mem::MemOpKind::kScatterAdd, 100, 8);
  sa.indices = {0, 1, 2, 3, 4, 5, 6, 7};
  mem::MemOpDesc sb = strided(mem::MemOpKind::kScatterAdd, 104, 8);
  sb.indices = {0, 1, 2, 3, 4, 5, 6, 7};
  prog.store(sa, a);
  prog.store(sb, b);
  const Diagnostics d = analysis::check_stream_program(prog);
  EXPECT_EQ(d.find("SP011"), nullptr) << d.format();
  EXPECT_EQ(d.errors(), 0) << d.format();
}

TEST(CheckStream, ConcurrentReadWriteOverlapIsSP012) {
  sim::StreamProgram prog;
  const sim::StreamId a = prog.new_stream(16);
  const sim::StreamId b = prog.new_stream(16);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 0, 8), a);
  prog.load(strided(mem::MemOpKind::kLoadStrided, 100, 8), b);  // reads 100..
  prog.store(strided(mem::MemOpKind::kStoreStrided, 100, 8), a);  // writes 100..
  const Diagnostics d = analysis::check_stream_program(prog);
  const Diagnostic* g = expect_diag(d, "SP012");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

// ---------------------------------------------------------------------------
// Scatter-assignment race detection (blocking schemes).
// ---------------------------------------------------------------------------

analysis::ScatterAssignment hazardous_assignment(bool combining) {
  analysis::ScatterAssignment a;
  a.name = "hazard";
  a.n_rows = 9;  // rows 0..7 + trash row 8
  a.trash_row = 8;
  a.combining = combining;
  a.base = 1000;
  a.record_words = 9;
  a.block_rows = {
      {0, 1, 2, 3},
      {4, 5, 5, 6},  // lanes 1 and 2 collide on row 5
      {7, 8, 8, 8},  // trash-row padding: never a collision
  };
  return a;
}

TEST(CheckScatter, CollisionWithoutCombiningIsSP013NamingBlockAndAddress) {
  const Diagnostics d =
      analysis::check_scatter_assignment(hazardous_assignment(false));
  const Diagnostic* g = expect_diag(d, "SP013");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
  EXPECT_EQ(g->loc.index, 1);  // the colliding block
  // Concrete colliding pair: block, both lanes, row, word address
  // (base 1000 + row 5 * 9 words = 1045).
  EXPECT_NE(g->message.find("block 1"), std::string::npos) << g->message;
  EXPECT_NE(g->message.find("lanes 1 and 2"), std::string::npos) << g->message;
  EXPECT_NE(g->message.find("1045"), std::string::npos) << g->message;
}

TEST(CheckScatter, CollisionUnderCombiningIsSP014Note) {
  const Diagnostics d =
      analysis::check_scatter_assignment(hazardous_assignment(true));
  EXPECT_EQ(d.find("SP013"), nullptr) << d.format();
  EXPECT_EQ(d.errors(), 0) << d.format();
  const Diagnostic* g = expect_diag(d, "SP014");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kNote);
}

TEST(CheckScatter, RowOutOfRangeIsSP016) {
  analysis::ScatterAssignment a = hazardous_assignment(true);
  a.block_rows[0][0] = 42;  // beyond n_rows
  const Diagnostics d = analysis::check_scatter_assignment(a);
  const Diagnostic* g = expect_diag(d, "SP016");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kError);
}

// ---------------------------------------------------------------------------
// Property tests: everything the repo ships is lint-clean.
// ---------------------------------------------------------------------------

TEST(Property, EveryBuiltinKernelVariantIsLintClean) {
  const md::WaterModel& model = md::spc();
  std::vector<KernelDef> defs;
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    defs.push_back(core::build_water_kernel(v, model));
  }
  defs.push_back(core::build_expanded_energy_kernel(model));
  for (const md::WaterModel* m : {&md::spc(), &md::tip5p(), &md::ppc()}) {
    defs.push_back(core::build_multisite_kernel(*m));
  }
  defs.push_back(core::build_blocked_kernel(model, 1.0, 64));
  for (const KernelDef& def : defs) {
    const Diagnostics d = analysis::verify_kernel(def);
    EXPECT_EQ(d.errors(), 0) << def.name << ":\n" << d.format();
    EXPECT_EQ(d.warnings(), 0) << def.name << ":\n" << d.format();
  }
}

TEST(Property, EveryVariantStreamProgramIsLintClean) {
  core::ExperimentSetup setup;
  setup.n_molecules = 48;
  const core::Problem problem = core::Problem::make(setup);
  const sim::MachineConfig cfg = sim::MachineConfig::merrimac();
  for (core::Variant v :
       {core::Variant::kExpanded, core::Variant::kFixed,
        core::Variant::kVariable, core::Variant::kDuplicated}) {
    core::LayoutOptions lopts;
    lopts.n_clusters = cfg.n_clusters;
    lopts.srf_words = cfg.srf_words;
    const core::VariantLayout layout =
        core::build_layout(v, problem.system, problem.half_list, lopts);
    const KernelDef kdef =
        core::build_water_kernel(v, problem.system.model());
    mem::GlobalMemory memory;
    const core::ProblemImage image =
        core::upload_system(memory, problem.system);
    const sim::StreamProgram program =
        core::build_program(memory, image, layout, kdef);
    analysis::StreamCheckOptions opts;
    opts.program_name = core::variant_name(v);
    opts.n_clusters = cfg.n_clusters;
    opts.srf_words = cfg.srf_words;
    opts.memory_words = memory.size();
    const Diagnostics d = analysis::check_stream_program(program, opts);
    EXPECT_EQ(d.errors(), 0) << core::variant_name(v) << ":\n" << d.format();
    EXPECT_EQ(d.warnings(), 0) << core::variant_name(v) << ":\n" << d.format();
  }
}

TEST(Property, EveryBuiltinBlockingSchemeIsCollisionFree) {
  core::ExperimentSetup setup;
  setup.n_molecules = 48;
  const core::Problem problem = core::Problem::make(setup);
  for (int cells : core::builtin_blocking_cells()) {
    const core::BlockingScheme scheme =
        core::build_blocking_scheme(problem.system, cells);
    const Diagnostics d =
        analysis::check_scatter_assignment(scheme.to_scatter_assignment());
    EXPECT_EQ(d.errors(), 0) << scheme.name << ":\n" << d.format();
    EXPECT_EQ(d.warnings(), 0) << scheme.name << ":\n" << d.format();
  }
}

}  // namespace
}  // namespace smd
