#include <gtest/gtest.h>

#include <cmath>

#include "src/md/constants.h"
#include "src/md/force_ref.h"
#include "src/md/integrator.h"
#include "src/md/neighborlist.h"
#include "src/md/pbc.h"
#include "src/md/system.h"
#include "src/md/water.h"

namespace smd::md {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((b - a).z, 3.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ(a.cross(b).x, 2 * 6 - 3 * 5);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm(), 5.0);
}

TEST(Box, WrapIntoPrimaryCell) {
  const Box box(2.0);
  const Vec3 p = box.wrap({2.5, -0.5, 1.0});
  EXPECT_NEAR(p.x, 0.5, 1e-12);
  EXPECT_NEAR(p.y, 1.5, 1e-12);
  EXPECT_NEAR(p.z, 1.0, 1e-12);
}

TEST(Box, MinImageWithinHalfBox) {
  const Box box(3.0);
  const Vec3 d = box.min_image({0.1, 0.1, 0.1}, {2.9, 2.9, 2.9});
  EXPECT_NEAR(d.x, 0.2, 1e-12);
  EXPECT_NEAR(d.norm(), 0.2 * std::sqrt(3.0), 1e-12);
}

TEST(Box, ShiftIsConsistentWithMinImage) {
  const Box box(3.0);
  const Vec3 a{0.1, 1.5, 2.9}, b{2.9, 1.4, 0.2};
  const Vec3 s = box.min_image_shift(a, b);
  const Vec3 d_direct = box.min_image(a, b);
  const Vec3 d_shift = a - (b + s);
  EXPECT_NEAR(d_direct.x, d_shift.x, 1e-12);
  EXPECT_NEAR(d_direct.y, d_shift.y, 1e-12);
  EXPECT_NEAR(d_direct.z, d_shift.z, 1e-12);
}

TEST(WaterModels, SpcGeometry) {
  const WaterModel& m = spc();
  ASSERT_EQ(m.sites.size(), 3u);
  const double d_oh = (m.sites[1].local_pos - m.sites[0].local_pos).norm();
  EXPECT_NEAR(d_oh, 0.1, 1e-12);
  // HOH angle = 109.47 degrees
  const Vec3 u = m.sites[1].local_pos, v = m.sites[2].local_pos;
  const double cosang = u.dot(v) / (u.norm() * v.norm());
  EXPECT_NEAR(std::acos(cosang) * 180.0 / M_PI, 109.47, 1e-6);
}

TEST(WaterModels, AllNeutral) {
  for (const auto* m : table5_models()) {
    if (m->sites.empty()) continue;
    EXPECT_NEAR(m->total_charge(), 0.0, 1e-12) << m->name;
  }
}

TEST(WaterModels, SpcDipoleMatchesLiterature) {
  EXPECT_NEAR(spc().computed_dipole_debye(), 2.27, 0.01);
}

TEST(WaterModels, Tip5pDipoleMatchesLiterature) {
  EXPECT_NEAR(tip5p().computed_dipole_debye(), tip5p().lit_dipole_debye, 0.10);
}

TEST(WaterModels, PpcDipoleMatchesTarget) {
  EXPECT_NEAR(ppc().computed_dipole_debye(), 2.52, 0.01);
}

TEST(WaterModels, NinePairInteractionsForSpc) {
  EXPECT_EQ(pair_interactions(spc()), 9u);
  EXPECT_EQ(pair_interactions(tip5p()), 25u);
}

TEST(WaterBox, DensityAndCount) {
  WaterBoxOptions opts;
  opts.n_molecules = 216;
  const WaterSystem sys = build_water_box(opts);
  EXPECT_EQ(sys.n_molecules(), 216);
  EXPECT_EQ(sys.n_atoms(), 648);
  const double density = sys.n_molecules() / sys.box().volume();
  EXPECT_NEAR(density, opts.number_density, 1e-9);
}

TEST(WaterBox, Deterministic) {
  WaterBoxOptions opts;
  opts.n_molecules = 64;
  const WaterSystem a = build_water_box(opts);
  const WaterSystem b = build_water_box(opts);
  for (int i = 0; i < a.n_atoms(); ++i) {
    EXPECT_DOUBLE_EQ(a.pos(i).x, b.pos(i).x);
    EXPECT_DOUBLE_EQ(a.vel(i).z, b.vel(i).z);
  }
}

TEST(WaterBox, RigidGeometryPreserved) {
  WaterBoxOptions opts;
  opts.n_molecules = 100;
  const WaterSystem sys = build_water_box(opts);
  for (int m = 0; m < sys.n_molecules(); ++m) {
    EXPECT_NEAR((sys.pos(m, 1) - sys.pos(m, 0)).norm(), 0.1, 1e-9);
    EXPECT_NEAR((sys.pos(m, 2) - sys.pos(m, 0)).norm(), 0.1, 1e-9);
  }
}

TEST(WaterBox, TemperatureNearTarget) {
  WaterBoxOptions opts;
  opts.n_molecules = 500;
  opts.temperature_kelvin = 300.0;
  const WaterSystem sys = build_water_box(opts);
  // Atomic (unconstrained) dof at build time: T estimate uses 6 dof per
  // molecule so the build-time value runs ~50% hot; just check sanity.
  EXPECT_GT(sys.temperature(), 200.0);
  EXPECT_LT(sys.temperature(), 700.0);
}

TEST(WaterBox, CenterOfMassMomentumRemoved) {
  const WaterSystem sys = build_water_box({});
  Vec3 p{};
  for (int a = 0; a < sys.n_atoms(); ++a) p += sys.vel(a) * sys.site_mass(a % 3);
  EXPECT_NEAR(p.norm(), 0.0, 1e-9);
}

class NeighborListParam : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(NeighborListParam, CellListMatchesBruteForce) {
  const auto [n, rc] = GetParam();
  WaterBoxOptions opts;
  opts.n_molecules = n;
  opts.seed = 17;
  const WaterSystem sys = build_water_box(opts);
  const NeighborList brute = build_neighbor_list_brute(sys, rc);
  const NeighborList cells = build_neighbor_list(sys, rc);
  ASSERT_EQ(brute.n_pairs(), cells.n_pairs());
  ASSERT_EQ(brute.offsets, cells.offsets);
  ASSERT_EQ(brute.neighbors, cells.neighbors);
  for (std::size_t k = 0; k < brute.shifts.size(); ++k) {
    EXPECT_NEAR(brute.shifts[k].x, cells.shifts[k].x, 1e-12);
    EXPECT_NEAR(brute.shifts[k].y, cells.shifts[k].y, 1e-12);
    EXPECT_NEAR(brute.shifts[k].z, cells.shifts[k].z, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NeighborListParam,
    ::testing::Values(std::make_tuple(64, 0.5), std::make_tuple(125, 0.6),
                      std::make_tuple(216, 0.45), std::make_tuple(343, 0.55),
                      std::make_tuple(512, 0.7)));

TEST(NeighborList, HalfListNoSelfNoDuplicates) {
  WaterBoxOptions opts;
  opts.n_molecules = 216;
  const WaterSystem sys = build_water_box(opts);
  const NeighborList list = build_neighbor_list(sys, 0.8);
  for (int i = 0; i < list.n_molecules(); ++i) {
    std::int32_t prev = -1;
    for (std::int32_t k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      EXPECT_GT(list.neighbors[k], i);   // half list: j > i
      EXPECT_GT(list.neighbors[k], prev);  // sorted, no duplicates
      prev = list.neighbors[k];
    }
  }
}

TEST(NeighborList, MeanDegreeMatchesDensityEstimate) {
  WaterBoxOptions opts;
  opts.n_molecules = 900;
  const WaterSystem sys = build_water_box(opts);
  const double rc = 1.0;
  const NeighborList list = build_neighbor_list(sys, rc);
  // Expected half-pair count: N * (4/3 pi rc^3 rho) / 2.
  const double expect =
      900.0 * (4.0 / 3.0 * M_PI * rc * rc * rc * opts.number_density) / 2.0;
  EXPECT_NEAR(static_cast<double>(list.n_pairs()), expect, 0.05 * expect);
}

TEST(ForceRef, NewtonThirdLawTotalForceZero) {
  WaterBoxOptions opts;
  opts.n_molecules = 125;
  const WaterSystem sys = build_water_box(opts);
  const NeighborList list = build_neighbor_list(sys, 0.9);
  const ForceEnergy fe = compute_forces_reference(sys, list);
  Vec3 total{};
  for (const auto& f : fe.force) total += f;
  EXPECT_NEAR(total.norm(), 0.0, 1e-7);
}

TEST(ForceRef, TwoMoleculeForceIsCentralDifferenceOfEnergy) {
  // Finite-difference check of dV/dx against the analytic force for a
  // hand-placed pair of molecules.
  WaterSystem sys(Box(100.0), spc(), 2);
  for (int s = 0; s < 3; ++s) {
    sys.pos(0, s) = spc().sites[s].local_pos + Vec3{1, 1, 1};
    sys.pos(1, s) = spc().sites[s].local_pos + Vec3{1.32, 1.05, 1.1};
  }
  NeighborList list;
  list.cutoff = 10.0;
  list.offsets = {0, 1, 1};
  list.neighbors = {1};
  list.shifts = {Vec3{}};

  const ForceEnergy fe = compute_forces_reference(sys, list);
  const double h = 1e-6;
  // Displace O of molecule 0 along x.
  auto energy = [&](double dx) {
    WaterSystem s2 = sys;
    s2.pos(0, 0).x += dx;
    const ForceEnergy e = compute_forces_reference(s2, list);
    return e.e_potential();
  };
  const double f_numeric = -(energy(h) - energy(-h)) / (2 * h);
  EXPECT_NEAR(fe.force[0].x, f_numeric, 1e-4 * std::max(1.0, std::fabs(f_numeric)));
}

TEST(ForceRef, EnergyPerMoleculePlausible) {
  // The synthetic box has random (unequilibrated) orientations, so the
  // electrostatic energy is near zero rather than the correlated liquid's
  // -40 kJ/mol/molecule; it must still be finite and of molecular scale,
  // and the short-range repulsion must not blow up (no overlapping sites).
  const WaterSystem sys = build_water_box({});
  const NeighborList list = build_neighbor_list(sys, 1.0);
  const ForceEnergy fe = compute_forces_reference(sys, list);
  ASSERT_TRUE(std::isfinite(fe.e_potential()));
  const double per_mol = fe.e_potential() / sys.n_molecules();
  EXPECT_LT(std::fabs(per_mol), 1000.0);
  for (const auto& f : fe.force) EXPECT_LT(f.norm(), 1e6);
}

TEST(ForceRef, FlopCensusMatchesPaperShape) {
  const InteractionFlops f = interaction_flop_census();
  EXPECT_EQ(f.divides, 9);
  EXPECT_EQ(f.square_roots, 9);
  // Paper: "~234 floating point operations including 9 divides and 9
  // square roots" -- our census must land in the same range.
  EXPECT_GE(f.total, 200);
  EXPECT_LE(f.total, 260);
  EXPECT_EQ(f.total, f.multiplies + f.adds + f.divides + f.square_roots);
}

TEST(ForceRef, SymmetricPairGivesOppositeForces) {
  WaterSystem sys(Box(50.0), spc(), 2);
  for (int s = 0; s < 3; ++s) {
    sys.pos(0, s) = spc().sites[s].local_pos + Vec3{5, 5, 5};
    sys.pos(1, s) = spc().sites[s].local_pos + Vec3{5.3, 5, 5};
  }
  Vec3 fc[3] = {}, fn[3] = {};
  water_water_interaction(sys, 0, 1, Vec3{}, fc, fn);
  Vec3 sum{};
  for (int s = 0; s < 3; ++s) sum += fc[s] + fn[s];
  EXPECT_NEAR(sum.norm(), 0.0, 1e-9);
}

TEST(Integrator, ConstraintsHoldOverSteps) {
  WaterBoxOptions opts;
  opts.n_molecules = 64;
  WaterSystem sys = build_water_box(opts);
  const double rc = 0.8;
  auto force = [rc](const WaterSystem& s) {
    return compute_forces_reference(s, build_neighbor_list(s, rc));
  };
  LeapfrogIntegrator integ(sys, force);
  integ.run(5);
  for (int m = 0; m < sys.n_molecules(); ++m) {
    EXPECT_NEAR((sys.pos(m, 1) - sys.pos(m, 0)).norm(), 0.1, 1e-5);
    EXPECT_NEAR((sys.pos(m, 2) - sys.pos(m, 1)).norm(),
                2 * 0.1 * std::sin(109.47 / 2 * M_PI / 180.0), 1e-5);
  }
}

TEST(Integrator, EnergyIsBoundedOverShortRun) {
  WaterBoxOptions opts;
  opts.n_molecules = 64;
  opts.temperature_kelvin = 250.0;
  WaterSystem sys = build_water_box(opts);
  const double rc = 0.8;
  auto force = [rc](const WaterSystem& s) {
    return compute_forces_reference(s, build_neighbor_list(s, rc));
  };
  LeapfrogIntegrator integ(sys, force);
  const double e0 = force(sys).e_potential() + sys.kinetic_energy();
  integ.run(10);
  const double e1 = force(sys).e_potential() + sys.kinetic_energy();
  // A freshly built lattice relaxes, so allow generous drift, but the total
  // energy must stay the same order of magnitude (no integrator blowup).
  EXPECT_LT(std::fabs(e1 - e0), 0.5 * std::fabs(e0) + 1000.0);
  EXPECT_TRUE(std::isfinite(e1));
}

}  // namespace
}  // namespace smd::md
