// Property tests for the MD substrate: periodic-boundary invariants over
// random points, physical invariances of the force field (translation,
// box-wrap), neighbor-list invariants over parameter sweeps, SHAKE
// convergence from perturbed geometries, and minimizer monotonicity.
#include <gtest/gtest.h>

#include <cmath>

#include "src/md/force_ref.h"
#include "src/md/integrator.h"
#include "src/md/neighborlist.h"
#include "src/md/system.h"
#include "src/util/rng.h"

namespace smd::md {
namespace {

TEST(PbcProperty, MinImageComponentsWithinHalfBox) {
  util::Rng rng(31);
  const Box box(2.7, 3.1, 1.9);
  for (int i = 0; i < 2000; ++i) {
    const Vec3 a{rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec3 b{rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec3 d = box.min_image(a, b);
    EXPECT_LE(std::fabs(d.x), box.length.x / 2 + 1e-9);
    EXPECT_LE(std::fabs(d.y), box.length.y / 2 + 1e-9);
    EXPECT_LE(std::fabs(d.z), box.length.z / 2 + 1e-9);
  }
}

TEST(PbcProperty, MinImageShortestOverNeighboringImages) {
  util::Rng rng(32);
  const Box box(2.0);
  for (int i = 0; i < 300; ++i) {
    const Vec3 a{rng.uniform(0, 2), rng.uniform(0, 2), rng.uniform(0, 2)};
    const Vec3 b{rng.uniform(0, 2), rng.uniform(0, 2), rng.uniform(0, 2)};
    const double d = box.min_image(a, b).norm();
    for (int ix = -1; ix <= 1; ++ix) {
      for (int iy = -1; iy <= 1; ++iy) {
        for (int iz = -1; iz <= 1; ++iz) {
          const Vec3 img = b + Vec3{2.0 * ix, 2.0 * iy, 2.0 * iz};
          EXPECT_LE(d, (a - img).norm() + 1e-9);
        }
      }
    }
  }
}

TEST(PbcProperty, WrapIsIdempotent) {
  util::Rng rng(33);
  const Box box(1.7);
  for (int i = 0; i < 1000; ++i) {
    const Vec3 p{rng.uniform(-9, 9), rng.uniform(-9, 9), rng.uniform(-9, 9)};
    const Vec3 w = box.wrap(p);
    const Vec3 w2 = box.wrap(w);
    EXPECT_GE(w.x, 0.0);
    EXPECT_LT(w.x, box.length.x);
    EXPECT_NEAR(w.x, w2.x, 1e-12);
    EXPECT_NEAR(w.y, w2.y, 1e-12);
    EXPECT_NEAR(w.z, w2.z, 1e-12);
  }
}

TEST(PbcProperty, WrapPreservesMinImageDistances) {
  util::Rng rng(34);
  const Box box(2.5);
  for (int i = 0; i < 500; ++i) {
    const Vec3 a{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec3 b{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    EXPECT_NEAR(box.min_image(a, b).norm(),
                box.min_image(box.wrap(a), box.wrap(b)).norm(), 1e-9);
  }
}

TEST(ForceProperty, InvariantUnderGlobalTranslation) {
  WaterBoxOptions opts;
  opts.n_molecules = 64;
  WaterSystem sys = build_water_box(opts);
  const NeighborList list = build_neighbor_list(sys, 0.7);
  const ForceEnergy before = compute_forces_reference(sys, list);

  // Rigid translation of everything: forces must be identical because all
  // displacements are; shifts recompute consistently.
  const Vec3 t{0.37, -0.21, 0.93};
  for (auto& p : sys.positions()) p += t;
  const NeighborList list2 = build_neighbor_list(sys, 0.7);
  ASSERT_EQ(list2.n_pairs(), list.n_pairs());
  const ForceEnergy after = compute_forces_reference(sys, list2);
  EXPECT_LT(max_force_rel_err(before.force, after.force), 1e-10);
  EXPECT_NEAR(before.e_potential(), after.e_potential(),
              1e-8 * std::fabs(before.e_potential()));
}

TEST(ForceProperty, InvariantUnderBoxWrap) {
  WaterBoxOptions opts;
  opts.n_molecules = 64;
  opts.seed = 77;
  WaterSystem sys = build_water_box(opts);
  // Move a third of the molecules by whole box vectors.
  util::Rng rng(5);
  for (int m = 0; m < sys.n_molecules(); m += 3) {
    const Vec3 shift{sys.box().length.x * static_cast<double>(1 + rng.uniform_u64(2)),
                     -sys.box().length.y, 0.0};
    for (int s = 0; s < 3; ++s) sys.pos(m, s) += shift;
  }
  WaterSystem wrapped = sys;
  const NeighborList la = build_neighbor_list(sys, 0.7);
  const NeighborList lb = build_neighbor_list(wrapped, 0.7);
  const ForceEnergy fa = compute_forces_reference(sys, la);
  const ForceEnergy fb = compute_forces_reference(wrapped, lb);
  EXPECT_LT(max_force_rel_err(fa.force, fb.force), 1e-10);
}

class CutoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(CutoffSweep, PairCountMonotoneAndShiftsExact) {
  const double rc = GetParam();
  WaterBoxOptions opts;
  opts.n_molecules = 125;
  const WaterSystem sys = build_water_box(opts);
  const NeighborList list = build_neighbor_list(sys, rc);
  // Every listed pair is within rc under its recorded shift, and the
  // shifted distance equals the minimum-image distance.
  for (int i = 0; i < list.n_molecules(); ++i) {
    for (std::int32_t k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      const std::int32_t j = list.neighbors[k];
      const Vec3 d = sys.molecule_center(i) -
                     (sys.molecule_center(j) + list.shifts[k]);
      EXPECT_LE(d.norm(), rc + 1e-9);
      EXPECT_NEAR(
          d.norm(),
          sys.box().min_image(sys.molecule_center(i), sys.molecule_center(j)).norm(),
          1e-9);
    }
  }
  // Monotone in the cutoff.
  if (rc > 0.45) {
    const NeighborList smaller = build_neighbor_list(sys, rc - 0.1);
    EXPECT_LE(smaller.n_pairs(), list.n_pairs());
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, CutoffSweep,
                         ::testing::Values(0.4, 0.5, 0.65, 0.8, 0.95));

TEST(ShakeProperty, RecoversGeometryFromPerturbedState) {
  WaterBoxOptions opts;
  opts.n_molecules = 27;
  WaterSystem sys = build_water_box(opts);
  util::Rng rng(9);
  for (auto& p : sys.positions()) {
    p += Vec3{rng.uniform(-0.004, 0.004), rng.uniform(-0.004, 0.004),
              rng.uniform(-0.004, 0.004)};
  }
  LeapfrogIntegrator integ(sys, [](const WaterSystem& s) {
    ForceEnergy fe;
    fe.force.assign(static_cast<std::size_t>(s.n_atoms()), Vec3{});
    return fe;
  });
  integ.apply_constraints_to_positions();
  const double d_hh = 2 * 0.1 * std::sin(109.47 / 2 * M_PI / 180.0);
  for (int m = 0; m < sys.n_molecules(); ++m) {
    EXPECT_NEAR((sys.pos(m, 1) - sys.pos(m, 0)).norm(), 0.1, 1e-6);
    EXPECT_NEAR((sys.pos(m, 2) - sys.pos(m, 0)).norm(), 0.1, 1e-6);
    EXPECT_NEAR((sys.pos(m, 2) - sys.pos(m, 1)).norm(), d_hh, 1e-6);
  }
}

TEST(Minimizer, NeverIncreasesEnergy) {
  WaterBoxOptions opts;
  opts.n_molecules = 64;
  opts.lattice_jitter = 0.3;  // deliberately clashy start
  WaterSystem sys = build_water_box(opts);
  auto force = [](const WaterSystem& s) {
    return compute_forces_reference(s, build_neighbor_list(s, 0.7));
  };
  const double e0 = force(sys).e_potential();
  double prev = e0;
  for (int round = 0; round < 4; ++round) {
    const double e = minimize_energy(sys, force, 10);
    EXPECT_LE(e, prev + 1e-6);
    prev = e;
  }
  EXPECT_LT(prev, e0);
  // Constraints survived the minimization.
  for (int m = 0; m < sys.n_molecules(); ++m) {
    EXPECT_NEAR((sys.pos(m, 1) - sys.pos(m, 0)).norm(), 0.1, 1e-5);
  }
}

TEST(SystemProperty, DensitySweepKeepsMoleculesInBox) {
  for (double density : {20.0, 33.33, 50.0}) {
    WaterBoxOptions opts;
    opts.n_molecules = 100;
    opts.number_density = density;
    const WaterSystem sys = build_water_box(opts);
    EXPECT_NEAR(sys.n_molecules() / sys.box().volume(), density, 1e-9);
    for (int m = 0; m < sys.n_molecules(); ++m) {
      const Vec3 c = sys.molecule_center(m);
      const Vec3 w = sys.box().wrap(c);
      EXPECT_NEAR((c - w).norm(), 0.0, 0.25);  // centers near primary cell
    }
  }
}

TEST(SystemProperty, SeedsProduceDifferentBoxes) {
  WaterBoxOptions a;
  a.seed = 1;
  WaterBoxOptions b;
  b.seed = 2;
  a.n_molecules = b.n_molecules = 27;
  const WaterSystem sa = build_water_box(a);
  const WaterSystem sb = build_water_box(b);
  int same = 0;
  for (int i = 0; i < sa.n_atoms(); ++i) {
    if (sa.pos(i).x == sb.pos(i).x) ++same;
  }
  EXPECT_LT(same, sa.n_atoms() / 10);
}

}  // namespace
}  // namespace smd::md
