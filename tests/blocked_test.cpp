// Tests for the Section 5.4 blocking-scheme extension: the broadcast-read
// blocked kernel (functional, against the pairwise reference) and the
// implementability profile (counts, paving, trade-off directions).
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "src/core/blocking.h"
#include "src/core/kernels.h"
#include "src/kernel/interp.h"
#include "src/md/force_ref.h"
#include "src/md/system.h"

namespace smd::core {
namespace {

/// Append a 10-word central / 13-word neighbor record.
void push_molecule(std::vector<double>* out, const md::WaterSystem& sys,
                   int mol, double id) {
  for (int s = 0; s < 3; ++s) {
    const md::Vec3& p = sys.pos(mol, s);
    out->insert(out->end(), {p.x, p.y, p.z});
  }
  out->push_back(id);
}

void push_dummy(std::vector<double>* out, double offset) {
  for (int s = 0; s < 3; ++s) {
    out->insert(out->end(), {1e6 + offset, 2e6 + 3 * s, -1e6 + 7 * offset});
  }
  out->push_back(-1.0);
}

TEST(BlockedKernel, MatchesReferenceWithMaskingAndCutoff) {
  const double rc = 0.6;
  // Three real molecules: A-B within the cutoff, C beyond it.
  md::WaterSystem sys(md::Box(50.0), md::spc(), 3);
  for (int s = 0; s < 3; ++s) {
    sys.pos(0, s) = md::spc().sites[s].local_pos + md::Vec3{5.0, 5.0, 5.0};
    sys.pos(1, s) = md::spc().sites[s].local_pos + md::Vec3{5.4, 5.1, 5.0};
    sys.pos(2, s) = md::spc().sites[s].local_pos + md::Vec3{7.5, 5.0, 5.0};
  }

  // Central group: clusters 0/1 hold A/B. Neighbor block: A, B, C, dummy
  // (all with zero cell shift), so the kernel must mask the self pair and
  // the dummy, and cut off C.
  const int block_len = 4;
  const kernel::KernelDef def =
      build_blocked_kernel(md::spc(), rc, block_len);

  std::vector<double> centrals, neighbors, forces;
  push_molecule(&centrals, sys, 0, 0.0);
  push_molecule(&centrals, sys, 1, 1.0);
  for (int m = 0; m < 3; ++m) {
    push_molecule(&neighbors, sys, m, static_cast<double>(m));
    neighbors.insert(neighbors.end(), {0.0, 0.0, 0.0});  // shift
  }
  push_dummy(&neighbors, 1.0);
  neighbors.insert(neighbors.end(), {0.0, 0.0, 0.0});

  kernel::Interpreter interp(def, 2);
  kernel::StreamBindings b;
  b.inputs = {std::span<const double>(centrals), std::span<const double>(neighbors), {}};
  b.outputs = {nullptr, nullptr, &forces};
  interp.run(b, 1);

  // Expected: only the A-B interaction contributes (O-O distance ~0.42nm
  // within rc; C is 2.5nm away).
  md::Vec3 fa[3] = {}, fb[3] = {};
  md::water_water_interaction(sys, 0, 1, md::Vec3{}, fa, fb);

  ASSERT_EQ(forces.size(), 18u);  // 2 clusters x 9 words
  for (int s = 0; s < 3; ++s) {
    EXPECT_NEAR(forces[static_cast<std::size_t>(3 * s + 0)], fa[s].x, 1e-10);
    EXPECT_NEAR(forces[static_cast<std::size_t>(3 * s + 1)], fa[s].y, 1e-10);
    EXPECT_NEAR(forces[static_cast<std::size_t>(3 * s + 2)], fa[s].z, 1e-10);
    EXPECT_NEAR(forces[static_cast<std::size_t>(9 + 3 * s + 0)], fb[s].x, 1e-10);
    EXPECT_NEAR(forces[static_cast<std::size_t>(9 + 3 * s + 1)], fb[s].y, 1e-10);
    EXPECT_NEAR(forces[static_cast<std::size_t>(9 + 3 * s + 2)], fb[s].z, 1e-10);
  }
}

TEST(BlockedKernel, ShiftAppliedToNeighbors) {
  // The same pair, but the neighbor record carries a cell shift that maps
  // it to the minimum image.
  const double rc = 0.8;
  md::WaterSystem sys(md::Box(2.0), md::spc(), 2);
  for (int s = 0; s < 3; ++s) {
    sys.pos(0, s) = md::spc().sites[s].local_pos + md::Vec3{0.1, 0.5, 0.5};
    sys.pos(1, s) = md::spc().sites[s].local_pos + md::Vec3{1.8, 0.5, 0.5};
  }
  const md::Vec3 shift = sys.box().min_image_shift(sys.molecule_center(0),
                                                   sys.molecule_center(1));
  ASSERT_LT(shift.x, 0.0);  // wraps across the boundary

  const kernel::KernelDef def = build_blocked_kernel(md::spc(), rc, 1);
  std::vector<double> centrals, neighbors, forces;
  push_molecule(&centrals, sys, 0, 0.0);
  push_molecule(&neighbors, sys, 1, 1.0);
  neighbors.insert(neighbors.end(), {shift.x, shift.y, shift.z});

  kernel::Interpreter interp(def, 1);
  kernel::StreamBindings b;
  b.inputs = {std::span<const double>(centrals), std::span<const double>(neighbors), {}};
  b.outputs = {nullptr, nullptr, &forces};
  interp.run(b, 1);

  md::Vec3 fa[3] = {}, fb[3] = {};
  md::water_water_interaction(sys, 0, 1, shift, fa, fb);
  for (int s = 0; s < 3; ++s) {
    EXPECT_NEAR(forces[static_cast<std::size_t>(3 * s)], fa[s].x, 1e-10);
  }
}

TEST(BlockedKernel, BroadcastSharesOneStreamRecordAcrossClusters) {
  const kernel::KernelDef def = build_blocked_kernel(md::spc(), 1.0, 2);
  bool has_bcast = false;
  for (const auto& in : def.body) {
    if (in.op == kernel::Opcode::kReadBcast) has_bcast = true;
  }
  EXPECT_TRUE(has_bcast);
}

TEST(BlockedProfile, TradeOffDirections) {
  md::WaterBoxOptions opts;
  opts.n_molecules = 900;
  const md::WaterSystem sys = md::build_water_box(opts);
  const md::NeighborList list = md::build_neighbor_list(sys, 1.0);

  const BlockedImplProfile coarse =
      profile_blocked_implementation(sys, list, 1.0, 3);
  const BlockedImplProfile fine =
      profile_blocked_implementation(sys, list, 1.0, 5);

  // Blocking always over-computes; finer cells pave more tightly per cell
  // but pay more padding.
  EXPECT_GT(coarse.compute_inflation, 1.0);
  EXPECT_GT(fine.compute_inflation, 1.0);
  // Coarse cells amortize loads better per computed pair, and the blocked
  // scheme always beats the 21-ish words/pair of the list-based variants.
  EXPECT_LT(coarse.words_per_real_pair, 21.0);
  // Counts are self-consistent.
  EXPECT_EQ(coarse.paving_cells % 2, 1);  // symmetric paving (odd count)
  EXPECT_GE(coarse.max_occupancy, static_cast<int>(coarse.avg_occupancy));
  EXPECT_GT(coarse.est_kernel_cycles, 0.0);
  EXPECT_GT(coarse.est_memory_cycles, 0.0);
}

TEST(BlockedProfile, RejectsBadCellCount) {
  md::WaterBoxOptions opts;
  opts.n_molecules = 64;
  const md::WaterSystem sys = md::build_water_box(opts);
  const md::NeighborList list = md::build_neighbor_list(sys, 0.6);
  EXPECT_THROW(profile_blocked_implementation(sys, list, 0.6, 0),
               std::runtime_error);
}

}  // namespace
}  // namespace smd::core
