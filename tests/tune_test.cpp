// Tests for the autotuning subsystem (src/tune/): config-space
// enumeration and hashing, the persistent result cache, the parallel
// runner, and the golden properties the paper pins down -- the variant
// ordering of Figure 9 and the blocking minimum of Figure 12 must fall
// out of the search, a cached re-run must be bit-identical with zero
// simulations, and the result list must not depend on --jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/blocking.h"
#include "src/core/run.h"
#include "src/obs/registry.h"
#include "src/tune/cache.h"
#include "src/tune/pareto.h"
#include "src/tune/runner.h"
#include "src/tune/space.h"

namespace smd::tune {
namespace {

// Simulated runs dominate this suite's cost; build each problem size once.
const core::Problem& problem_with(int n_molecules) {
  static std::map<int, core::Problem> cache;
  auto it = cache.find(n_molecules);
  if (it == cache.end()) {
    core::ExperimentSetup setup;
    setup.n_molecules = n_molecules;
    it = cache.emplace(n_molecules, core::Problem::make(setup)).first;
  }
  return it->second;
}

std::string results_fingerprint(const std::vector<EvalResult>& results) {
  std::string s;
  for (const auto& r : results) s += to_json(r).dump() + "\n";
  return s;
}

TEST(Space, ParseEnumerateCartesian) {
  const ConfigSpace space = ConfigSpace::parse("variant=fixed,variable;L=4:8:4");
  EXPECT_EQ(space.size(), 4);
  const std::vector<Candidate> cands = space.enumerate();
  ASSERT_EQ(cands.size(), 4u);
  std::set<std::string> keys;
  for (const auto& c : cands) {
    keys.insert(c.key());
    EXPECT_TRUE(c.variant == core::Variant::kFixed ||
                c.variant == core::Variant::kVariable);
    EXPECT_TRUE(c.fixed_list_length == 4 || c.fixed_list_length == 8);
    // Axes absent from the space keep the base candidate's value.
    EXPECT_EQ(c.n_clusters, 16);
  }
  EXPECT_EQ(keys.size(), 4u) << "cartesian product produced duplicates";
}

TEST(Space, ParseRejectsUnknownAxisAndBadValue) {
  EXPECT_THROW(ConfigSpace::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(ConfigSpace::parse("variant=quantum"), std::invalid_argument);
  EXPECT_FALSE(axis_names().empty());
}

TEST(Space, HashIsStableAndSaltSensitive) {
  const Candidate a, b;
  EXPECT_EQ(config_hash(a, kModelVersion), config_hash(b, kModelVersion));
  Candidate c = a;
  c.variant = core::Variant::kFixed;
  EXPECT_NE(config_hash(a, kModelVersion), config_hash(c, kModelVersion));
  // Bumping the model version must miss every old entry.
  EXPECT_NE(config_hash(a, "smd-tune-v1"), config_hash(a, "smd-tune-v2"));
  EXPECT_EQ(hash_hex(0xabcULL), "0000000000000abc");
}

TEST(Space, CandidateJsonRoundTrip) {
  Candidate c;
  c.variant = core::Variant::kExpanded;
  c.fixed_list_length = 12;
  c.blocking_cells = 3;
  c.sdr_policy = sim::SdrPolicy::kConservative;
  c.n_clusters = 8;
  c.srf_kb = 512;
  c.dram_gbps = 19.2;
  const Candidate back = Candidate::from_json(c.to_json());
  EXPECT_EQ(back.key(), c.key());
  EXPECT_EQ(config_hash(back), config_hash(c));
}

TEST(Space, MachineOverridesMaterializeAndValidate) {
  Candidate c;
  c.n_clusters = 8;
  c.srf_kb = 512;
  const sim::MachineConfig cfg = c.machine();
  EXPECT_EQ(cfg.n_clusters, 8);
  EXPECT_EQ(cfg.srf_words, 512 * 128);
  EXPECT_EQ(cfg.validate().errors(), 0u);

  Candidate bad = c;
  bad.n_clusters = 0;
  EXPECT_GT(bad.machine().validate().errors(), 0u);
  EXPECT_THROW(evaluate(problem_with(64), bad), analysis::CheckFailure);
}

TEST(Runner, AnalyticEstimateAndPruning) {
  const auto est = estimate(problem_with(64), Candidate{});
  EXPECT_GT(est.time_cycles, 0.0);
  EXPECT_GT(est.mem_words, 0.0);

  // b is 2x better than a on both axes: pruned at slack 1.5, kept at 3.
  std::vector<core::AnalyticEstimate> pts(2);
  pts[0].time_cycles = 2000.0;
  pts[0].mem_words = 2000.0;
  pts[1].time_cycles = 1000.0;
  pts[1].mem_words = 1000.0;
  const auto keep15 = core::prune_dominated(pts, 1.5);
  EXPECT_FALSE(keep15[0]);
  EXPECT_TRUE(keep15[1]);
  const auto keep3 = core::prune_dominated(pts, 3.0);
  EXPECT_TRUE(keep3[0] && keep3[1]);
  const auto keep_off = core::prune_dominated(pts, 0.0);
  EXPECT_TRUE(keep_off[0] && keep_off[1]);
}

// Figure 9's conclusion must fall out of the search: on the Table 1
// machine the tuner ranks variable < fixed < expanded by run time.
TEST(Golden, VariantOrderingReproduced) {
  const ConfigSpace space =
      ConfigSpace::parse("variant=expanded,fixed,variable");
  RunnerOptions opts;
  opts.jobs = 4;
  Runner runner(problem_with(256), opts);
  const std::vector<EvalResult> results = runner.run(space.enumerate());
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.error;

  double time_of[4] = {};
  for (const auto& r : results) {
    EXPECT_EQ(r.metrics.source, "sim");
    time_of[static_cast<int>(r.cand.variant)] = r.metrics.time_ms;
  }
  const double expanded = time_of[static_cast<int>(core::Variant::kExpanded)];
  const double fixed = time_of[static_cast<int>(core::Variant::kFixed)];
  const double variable = time_of[static_cast<int>(core::Variant::kVariable)];
  EXPECT_LT(variable, fixed);
  EXPECT_LT(fixed, expanded);

  // The report layer agrees: best overall is `variable`, and it is on the
  // Pareto front.
  const std::size_t best = best_index(results);
  ASSERT_LT(best, results.size());
  EXPECT_EQ(results[best].cand.variant, core::Variant::kVariable);
  const auto front = pareto_front(results);
  EXPECT_NE(std::find(front.begin(), front.end(), best), front.end());
}

// Figure 12's conclusion in the paper's memory-bound regime: an interior
// run-time minimum below 1.0x `variable` at a few molecules per cluster.
TEST(Golden, BlockingMinimumReproduced) {
  core::BlockingModelParams params;
  params.variable_kernel_cycles = 1.0e6;
  params.variable_memory_cycles = 2.5e6;  // the paper's regime
  const core::BlockingPoint min = core::BlockingModel(params).minimum();
  EXPECT_LT(min.time_rel, 1.0);
  EXPECT_GT(min.size, 0.4);
  EXPECT_LT(min.size, 6.0);
  EXPECT_GE(min.molecules, 1.0);
  EXPECT_LE(min.molecules, 64.0);
}

// A sweep re-run against a warm cache performs zero simulations and
// returns bit-identical results; the result list is independent of the
// worker count. (Counters are read as deltas of the process registry:
// worker shards merge there.)
TEST(Golden, CacheRerunBitIdenticalAndJobsInvariant) {
  const std::string path = testing::TempDir() + "/tune_test_cache.json";
  std::remove(path.c_str());
  const ConfigSpace space =
      ConfigSpace::parse("variant=fixed,variable;sdr=conservative,transfer");
  const std::vector<Candidate> cands = space.enumerate();
  ASSERT_EQ(cands.size(), 4u);
  const core::Problem& problem = problem_with(128);
  auto& reg = obs::CounterRegistry::process();

  RunnerOptions opts;
  opts.jobs = 1;
  opts.cache_path = path;
  const std::int64_t evaluated0 = reg.counter("tune.evaluated");
  const std::vector<EvalResult> cold = Runner(problem, opts).run(cands);
  for (const auto& r : cold) ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(reg.counter("tune.evaluated") - evaluated0, 4);

  // Warm re-run with a different worker count: 100% hits, 0 simulations.
  opts.jobs = 4;
  const std::int64_t hits0 = reg.counter("tune.cache.hits");
  const std::int64_t evaluated1 = reg.counter("tune.evaluated");
  const std::vector<EvalResult> warm = Runner(problem, opts).run(cands);
  EXPECT_EQ(reg.counter("tune.cache.hits") - hits0, 4);
  EXPECT_EQ(reg.counter("tune.evaluated") - evaluated1, 0);
  for (const auto& r : warm) EXPECT_TRUE(r.cached);

  // Bit-identical metrics (the cached flag itself differs by design).
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].hash, warm[i].hash);
    EXPECT_EQ(cold[i].metrics.to_json().dump(),
              warm[i].metrics.to_json().dump());
  }

  // Fresh evaluation with jobs=4 (cache off) matches jobs=1 byte for byte.
  RunnerOptions par;
  par.jobs = 4;
  const std::vector<EvalResult> jobs4 = Runner(problem, par).run(cands);
  EXPECT_EQ(results_fingerprint(cold), results_fingerprint(jobs4));
  std::remove(path.c_str());
}

TEST(Cache, SaltMismatchDiscardsAndCorruptFileIsEmpty) {
  const std::string path = testing::TempDir() + "/tune_test_salt.json";
  {
    ResultCache cache(path, "salt-a");
    cache.load();
    Metrics m;
    m.time_ms = 1.5;
    m.source = "sim";
    cache.insert(config_hash(Candidate{}, "salt-a"), Candidate{}, m);
    cache.save();
  }
  {
    ResultCache same(path, "salt-a");
    EXPECT_EQ(same.load(), 1u);
    ResultCache other(path, "salt-b");
    EXPECT_EQ(other.load(), 0u);
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not json", f);
    std::fclose(f);
    ResultCache corrupt(path, "salt-a");
    EXPECT_EQ(corrupt.load(), 0u);
  }
  std::remove(path.c_str());
}

// Crash/concurrency-safety of the persistent cache (DESIGN.md section
// 13): a truncated (torn) file or a malformed entry is tolerated with a
// counter, never thrown, and save() goes through the atomic temp+rename
// so no .tmp litter survives a successful save.
TEST(Cache, TornFileAndMalformedEntriesAreTolerated) {
  const std::string path = testing::TempDir() + "/tune_test_torn.json";
  auto& reg = obs::CounterRegistry::process();

  // Build a valid one-entry cache file, then truncate it mid-document.
  {
    ResultCache cache(path, kModelVersion);
    Metrics m;
    m.time_ms = 2.5;
    m.source = "sim";
    cache.insert(config_hash(Candidate{}, kModelVersion), Candidate{}, m);
    cache.save();
    EXPECT_EQ(std::remove((path + ".tmp").c_str()), -1)
        << "atomic save left its temp file behind";
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long full = std::ftell(f);
    std::fclose(f);
    ASSERT_GT(full, 32);
    std::string head(static_cast<std::size_t>(full) / 2, '\0');
    f = std::fopen(path.c_str(), "r");
    ASSERT_EQ(std::fread(head.data(), 1, head.size(), f), head.size());
    std::fclose(f);
    f = std::fopen(path.c_str(), "w");
    std::fwrite(head.data(), 1, head.size(), f);
    std::fclose(f);
  }
  const std::int64_t corrupt0 = reg.counter("tune.cache.load_corrupt");
  {
    ResultCache torn(path, kModelVersion);
    EXPECT_EQ(torn.load(), 0u);  // no throw: empty cache
  }
  EXPECT_EQ(reg.counter("tune.cache.load_corrupt") - corrupt0, 1);

  // One good entry plus two malformed ones (bad key, missing metrics):
  // the good entry loads, the bad ones are skipped and counted.
  {
    obs::Json good = obs::Json::object();
    Metrics m;
    m.time_ms = 1.0;
    m.source = "sim";
    good.set("config", Candidate{}.to_json());
    good.set("metrics", m.to_json());
    obs::Json bad_key = good;  // valid body under an unparsable key
    obs::Json no_metrics = obs::Json::object();
    no_metrics.set("config", Candidate{}.to_json());
    obs::Json entries = obs::Json::object();
    entries.set(hash_hex(config_hash(Candidate{}, kModelVersion)),
                std::move(good));
    entries.set("not-a-hash", std::move(bad_key));
    entries.set(hash_hex(1234), std::move(no_metrics));
    obs::Json doc = obs::Json::object();
    doc.set("schema_version", 1);
    doc.set("salt", kModelVersion);
    doc.set("entries", std::move(entries));
    obs::write_file_atomic(doc, path);
  }
  const std::int64_t skipped0 = reg.counter("tune.cache.load_skipped");
  {
    ResultCache partial(path, kModelVersion);
    EXPECT_EQ(partial.load(), 1u);
    Metrics out;
    EXPECT_TRUE(partial.lookup(config_hash(Candidate{}, kModelVersion), &out));
    EXPECT_EQ(out.time_ms, 1.0);
  }
  EXPECT_EQ(reg.counter("tune.cache.load_skipped") - skipped0, 2);
  std::remove(path.c_str());
}

TEST(Pareto, FrontAndBestPerVariant) {
  std::vector<EvalResult> rs(3);
  rs[0].cand.variant = core::Variant::kExpanded;
  rs[0].metrics = {
      .time_ms = 2.0, .mem_words = 100, .srf_peak_words = 10, .source = "sim"};
  rs[1].cand.variant = core::Variant::kVariable;
  rs[1].metrics = {
      .time_ms = 1.0, .mem_words = 50, .srf_peak_words = 10, .source = "sim"};
  rs[2].cand.variant = core::Variant::kFixed;
  rs[2].metrics = {
      .time_ms = 1.5, .mem_words = 40, .srf_peak_words = 10, .source = "sim"};
  const auto front = pareto_front(rs);
  EXPECT_EQ(front, (std::vector<std::size_t>{1, 2}));  // 0 dominated by 1
  EXPECT_EQ(best_index(rs), 1u);
  const auto by_variant = best_per_variant(rs);
  ASSERT_EQ(by_variant.size(), 3u);
  EXPECT_EQ(by_variant[0], 1u);  // fastest first
  const std::string table = format_results_table(rs, front);
  EXPECT_NE(table.find('*'), std::string::npos);
}

}  // namespace
}  // namespace smd::tune
