#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace smd::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng r(99);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_u64(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Rng, NormalMomentsCorrect) {
  Rng r(5);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(r.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, ReseedResetsStream) {
  Rng r(42);
  const auto v1 = r.next_u64();
  r.next_u64();
  r.reseed(42);
  EXPECT_EQ(r.next_u64(), v1);
}

TEST(Accumulator, BasicStatistics) {
  Accumulator a;
  for (double x : {1.0, 2.0, 3.0, 4.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_NEAR(a.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, SingleValueHasZeroVariance) {
  Accumulator a;
  a.add(3.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-100.0);  // clamps to bucket 0
  h.add(100.0);   // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, NanIsCountedSeparatelyNotBucketed) {
  // Regression: NaN compares false with everything, so it used to fall
  // through the clamp and hit an out-of-range double->size_t cast (UB).
  Histogram h(0.0, 10.0, 10);
  h.add(std::nan(""));
  h.add(-std::nan(""));
  h.add(5.0);
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 1u);  // NaN never lands in a bucket
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) bucketed += h.bucket(i);
  EXPECT_EQ(bucketed, 1u);
}

TEST(Histogram, InfinitiesClampToEndBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(-std::numeric_limits<double>::infinity());
  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(RelErr, SymmetricAndScaled) {
  EXPECT_DOUBLE_EQ(rel_err(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_err(100.0, 99.0), 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(rel_err(1.0, 2.0), rel_err(2.0, 1.0));
  // floor prevents blowup near zero
  EXPECT_LE(rel_err(0.0, 1e-13, 1e-12), 1.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.50"});
  t.add_row({"b", "20.00"});
  const std::string s = t.render();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20.00"), std::string::npos);
  // header separator present
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(1234567), "1,234,567");
  EXPECT_EQ(Table::integer(-1000), "-1,000");
  EXPECT_EQ(Table::integer(999), "999");
  EXPECT_EQ(Table::percent(0.945, 1), "94.5%");
}

}  // namespace
}  // namespace smd::util
