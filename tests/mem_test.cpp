#include <gtest/gtest.h>

#include <numeric>

#include "src/mem/addrgen.h"
#include "src/mem/cache.h"
#include "src/mem/dram.h"
#include "src/mem/memsys.h"
#include "src/mem/scatteradd.h"
#include "src/util/rng.h"

namespace smd::mem {
namespace {

MemSystemConfig small_config() {
  MemSystemConfig cfg;
  cfg.cache.total_words = 4096;
  cfg.dram.access_latency = 20;
  return cfg;
}

/// Drive the memory system until every issued op has completed.
std::uint64_t run_to_completion(MemSystem& ms, std::uint64_t limit = 10'000'000) {
  while (!ms.all_done()) {
    ms.tick();
    if (ms.now() > limit) {
      ADD_FAILURE() << "memory system did not drain";
      break;
    }
  }
  return ms.now();
}

TEST(GlobalMemory, AllocReadWrite) {
  GlobalMemory mem;
  const auto a = mem.alloc(10);
  const auto b = mem.alloc(5);
  EXPECT_EQ(b, a + 10);
  mem.write(a + 3, 7.5);
  EXPECT_DOUBLE_EQ(mem.read(a + 3), 7.5);
  mem.add(a + 3, 2.5);
  EXPECT_DOUBLE_EQ(mem.read(a + 3), 10.0);
}

TEST(GlobalMemory, BlockHelpersBoundsChecked) {
  GlobalMemory mem;
  const auto a = mem.alloc(4);
  mem.write_block(a, {1, 2, 3, 4});
  EXPECT_EQ(mem.read_block(a, 4), (std::vector<double>{1, 2, 3, 4}));
  EXPECT_THROW(mem.write_block(a + 2, {1, 2, 3}), std::runtime_error);
  EXPECT_THROW(mem.read_block(a, 5), std::runtime_error);
}

TEST(GlobalMemory, BlockHelpersRejectUnsignedWrap) {
  // Regression: `addr + n` overflow used to wrap past the end-of-memory
  // check and index out of bounds. Addresses near 2^64 must throw, not
  // wrap to small offsets.
  GlobalMemory mem;
  mem.alloc(16);
  const std::uint64_t huge = ~0ULL - 1;
  EXPECT_THROW(mem.write_block(huge, {1.0, 2.0, 3.0}), std::runtime_error);
  EXPECT_THROW(mem.read_block(huge, 4), std::runtime_error);
  EXPECT_THROW((void)mem.read_block(0, -1), std::runtime_error);
  // An exact fit against the upper boundary stays legal (off-by-one guard).
  mem.write_block(14, {7.0, 8.0});
  EXPECT_EQ(mem.read_block(14, 2), (std::vector<double>{7.0, 8.0}));
  EXPECT_THROW(mem.write_block(15, {7.0, 8.0}), std::runtime_error);
}

TEST(AddrGen, StridedDense) {
  MemOpDesc d;
  d.kind = MemOpKind::kLoadStrided;
  d.base = 100;
  d.n_records = 3;
  d.record_words = 2;
  AddressGenerator ag;
  ag.start(&d);
  std::vector<std::uint64_t> addrs;
  while (!ag.done()) {
    addrs.push_back(ag.peek());
    ag.advance();
  }
  EXPECT_EQ(addrs, (std::vector<std::uint64_t>{100, 101, 102, 103, 104, 105}));
}

TEST(AddrGen, StridedWithGap) {
  MemOpDesc d;
  d.kind = MemOpKind::kLoadStrided;
  d.base = 0;
  d.n_records = 2;
  d.record_words = 2;
  d.stride_words = 5;
  AddressGenerator ag;
  ag.start(&d);
  std::vector<std::uint64_t> addrs;
  while (!ag.done()) {
    addrs.push_back(ag.peek());
    ag.advance();
  }
  EXPECT_EQ(addrs, (std::vector<std::uint64_t>{0, 1, 5, 6}));
}

TEST(AddrGen, GatherUsesIndices) {
  MemOpDesc d;
  d.kind = MemOpKind::kLoadGather;
  d.base = 10;
  d.n_records = 3;
  d.record_words = 3;
  d.indices = {2, 0, 5};
  AddressGenerator ag;
  ag.start(&d);
  std::vector<std::uint64_t> addrs;
  while (!ag.done()) {
    addrs.push_back(ag.peek());
    ag.advance();
  }
  EXPECT_EQ(addrs, (std::vector<std::uint64_t>{16, 17, 18, 10, 11, 12, 25, 26, 27}));
}

TEST(AddrGen, ShortIndexStreamThrows) {
  MemOpDesc d;
  d.kind = MemOpKind::kLoadGather;
  d.n_records = 3;
  d.indices = {1};
  AddressGenerator ag;
  EXPECT_THROW(ag.start(&d), std::runtime_error);
}

TEST(CacheTags, HitAfterInstall) {
  CacheConfig cfg;
  cfg.total_words = 1024;
  CacheTags tags(cfg);
  EXPECT_EQ(tags.probe(40), CacheOutcome::kMiss);
  bool ev, dirty;
  std::uint64_t line;
  tags.install(tags.line_of(40), &ev, &line, &dirty);
  EXPECT_FALSE(ev);
  EXPECT_EQ(tags.probe(40), CacheOutcome::kHit);
  EXPECT_EQ(tags.probe(47), CacheOutcome::kHit);  // same 8-word line
  EXPECT_EQ(tags.probe(48), CacheOutcome::kMiss); // next line
}

TEST(CacheTags, LruEvictionOrder) {
  CacheConfig cfg;
  cfg.total_words = 8 * 4 * 8;  // exactly 4 sets... keep small: 4 lines/set
  cfg.n_banks = 1;
  cfg.associativity = 2;
  CacheTags tags(cfg);
  const std::int64_t n_sets = cfg.total_words / cfg.line_words / cfg.associativity;
  bool ev, dirty;
  std::uint64_t evl;
  // Fill one set with two lines, touch the first, install a third:
  // the second (LRU) must be evicted.
  const std::uint64_t l0 = 0, l1 = l0 + static_cast<std::uint64_t>(n_sets),
                      l2 = l0 + 2 * static_cast<std::uint64_t>(n_sets);
  tags.install(l0, &ev, &evl, &dirty);
  tags.install(l1, &ev, &evl, &dirty);
  tags.probe(l0 * 8);  // refresh l0
  tags.install(l2, &ev, &evl, &dirty);
  EXPECT_TRUE(ev);
  EXPECT_EQ(evl, l1);
}

TEST(CacheTags, DirtyEvictionReported) {
  CacheConfig cfg;
  cfg.total_words = 8 * 2;  // 2 lines, 1 set at assoc 2
  cfg.associativity = 2;
  cfg.n_banks = 1;
  CacheTags tags(cfg);
  bool ev, dirty;
  std::uint64_t evl;
  tags.install(0, &ev, &evl, &dirty);
  tags.mark_dirty(0);
  tags.install(1, &ev, &evl, &dirty);
  tags.install(2, &ev, &evl, &dirty);  // evicts line 0 (dirty)
  EXPECT_TRUE(ev);
  EXPECT_TRUE(dirty);
  EXPECT_EQ(tags.stats().dirty_evictions, 1);
}

TEST(Dram, ReadCompletesAfterLatency) {
  DramConfig cfg;
  cfg.access_latency = 10;
  Dram dram(cfg, 8);
  ASSERT_TRUE(dram.try_read_line(3));
  std::vector<std::uint64_t> done;
  for (int t = 0; t < 200 && done.empty(); ++t) {
    dram.tick();
    for (auto line : dram.drain_completed_reads()) done.push_back(line);
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 3u);
  // Latency must be at least access_latency + transfer time.
  EXPECT_GE(dram.now(), 10u);
}

TEST(Dram, PeakBandwidthApproached) {
  // Stream many sequential lines through all channels and verify the
  // sustained rate approaches n_channels * words_per_cycle.
  DramConfig cfg;
  cfg.access_latency = 10;
  Dram dram(cfg, 8);
  const int n_lines = 2000;
  int issued = 0, completed = 0;
  while (completed < n_lines) {
    while (issued < n_lines && dram.try_read_line(static_cast<std::uint64_t>(issued))) ++issued;
    dram.tick();
    completed += static_cast<int>(dram.drain_completed_reads().size());
    ASSERT_LT(dram.now(), 100000u);
  }
  const double words = static_cast<double>(n_lines) * 8;
  const double peak = cfg.channel_words_per_cycle * cfg.n_channels;
  const double achieved = words / static_cast<double>(dram.now());
  EXPECT_GT(achieved, 0.75 * peak);
  EXPECT_LE(achieved, peak * 1.01);
}

TEST(Dram, RandomAccessSlowerThanSequential) {
  auto run = [](bool random) {
    DramConfig cfg;
    Dram dram(cfg, 8);
    util::Rng rng(1);
    const int n_lines = 1500;
    int issued = 0, completed = 0;
    while (completed < n_lines) {
      while (issued < n_lines) {
        const std::uint64_t line =
            random ? rng.uniform_u64(1 << 20) : static_cast<std::uint64_t>(issued);
        if (!dram.try_read_line(line)) break;
        ++issued;
      }
      dram.tick();
      completed += static_cast<int>(dram.drain_completed_reads().size());
    }
    return dram.now();
  };
  EXPECT_GT(run(true), run(false));
}

TEST(Dram, WritesDrain) {
  DramConfig cfg;
  Dram dram(cfg, 8);
  ASSERT_TRUE(dram.try_write_words(100, 64));
  int t = 0;
  while (!dram.writes_drained() && t < 10000) {
    dram.tick();
    ++t;
  }
  EXPECT_TRUE(dram.writes_drained());
  EXPECT_EQ(dram.stats().write_words, 64);
}

TEST(CombiningStore, MergesSameAddress) {
  ScatterAddConfig cfg;
  CombiningStore cs(cfg);
  EXPECT_FALSE(cs.try_merge(42, 0));  // nothing in flight yet
  EXPECT_TRUE(cs.try_allocate(42, 0));
  EXPECT_TRUE(cs.try_merge(42, 1));
  EXPECT_TRUE(cs.try_merge(42, 2));
  EXPECT_EQ(cs.stats().combined, 2);
  EXPECT_EQ(cs.occupancy(), 1);
}

TEST(CombiningStore, CapacityEnforced) {
  ScatterAddConfig cfg;
  cfg.combining_entries = 2;
  CombiningStore cs(cfg);
  EXPECT_TRUE(cs.try_allocate(1, 0));
  EXPECT_TRUE(cs.try_allocate(2, 0));
  EXPECT_FALSE(cs.try_allocate(3, 0));  // full, different address
  EXPECT_TRUE(cs.try_merge(1, 0));      // merge still allowed
  EXPECT_EQ(cs.stats().stalled, 1);
}

TEST(CombiningStore, MergeWindowExpires) {
  ScatterAddConfig cfg;
  cfg.latency = 4;
  CombiningStore cs(cfg);
  cs.try_allocate(7, 10);
  cs.purge_expired(12);
  EXPECT_FALSE(cs.empty());       // still in the pipeline at t=12
  EXPECT_TRUE(cs.try_merge(7, 12));  // merging extends the window
  cs.purge_expired(15);
  EXPECT_FALSE(cs.empty());       // extended to 16
  cs.purge_expired(17);
  EXPECT_TRUE(cs.empty());
  EXPECT_FALSE(cs.try_merge(7, 18));  // window closed
}

// ---------------------------------------------------------------------------
// MemSystem end-to-end
// ---------------------------------------------------------------------------

TEST(MemSystem, StridedLoadFunctionalAndTimed) {
  GlobalMemory mem;
  const auto base = mem.alloc(1000);
  for (int i = 0; i < 1000; ++i) mem.write(base + static_cast<std::uint64_t>(i), i * 0.5);
  MemSystem ms(small_config(), &mem);

  MemOpDesc d;
  d.kind = MemOpKind::kLoadStrided;
  d.base = base;
  d.n_records = 100;
  d.record_words = 4;
  std::vector<double> dst;
  const auto id = ms.issue(d, &dst, nullptr);
  ASSERT_EQ(dst.size(), 400u);
  for (int i = 0; i < 400; ++i) EXPECT_DOUBLE_EQ(dst[static_cast<std::size_t>(i)], i * 0.5);
  EXPECT_FALSE(ms.op_done(id));
  run_to_completion(ms);
  EXPECT_TRUE(ms.op_done(id));
  EXPECT_GT(ms.op_finish_time(id), 0u);
}

TEST(MemSystem, GatherLoadPullsIndexedRecords) {
  GlobalMemory mem;
  const auto base = mem.alloc(90);
  for (int i = 0; i < 90; ++i) mem.write(base + static_cast<std::uint64_t>(i), i);
  MemSystem ms(small_config(), &mem);
  MemOpDesc d;
  d.kind = MemOpKind::kLoadGather;
  d.base = base;
  d.n_records = 3;
  d.record_words = 9;
  d.indices = {5, 0, 9};
  std::vector<double> dst;
  ms.issue(d, &dst, nullptr);
  run_to_completion(ms);
  ASSERT_EQ(dst.size(), 27u);
  EXPECT_DOUBLE_EQ(dst[0], 45.0);
  EXPECT_DOUBLE_EQ(dst[9], 0.0);
  EXPECT_DOUBLE_EQ(dst[18], 81.0);
}

TEST(MemSystem, StoreWritesThrough) {
  GlobalMemory mem;
  const auto base = mem.alloc(64);
  MemSystem ms(small_config(), &mem);
  MemOpDesc d;
  d.kind = MemOpKind::kStoreStrided;
  d.base = base;
  d.n_records = 8;
  d.record_words = 8;
  std::vector<double> src(64);
  std::iota(src.begin(), src.end(), 0.0);
  ms.issue(d, nullptr, &src);
  run_to_completion(ms);
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(mem.read(base + static_cast<std::uint64_t>(i)), i);
  }
  EXPECT_EQ(ms.dram_stats().write_words, 64);
}

TEST(MemSystem, ScatterAddAccumulates) {
  GlobalMemory mem;
  const auto base = mem.alloc(10);
  MemSystem ms(small_config(), &mem);
  MemOpDesc d;
  d.kind = MemOpKind::kScatterAdd;
  d.base = base;
  d.n_records = 6;
  d.record_words = 1;
  d.indices = {3, 3, 3, 1, 3, 1};
  const std::vector<double> src = {1, 2, 3, 10, 4, 20};
  ms.issue(d, nullptr, &src);
  run_to_completion(ms);
  EXPECT_DOUBLE_EQ(mem.read(base + 3), 10.0);
  EXPECT_DOUBLE_EQ(mem.read(base + 1), 30.0);
  EXPECT_GT(ms.scatter_add_stats().combined, 0);
}

TEST(MemSystem, ScatterAddMatchesSequentialSumProperty) {
  // Property: for adversarial random index multisets, scatter-add equals a
  // sequential accumulation.
  util::Rng rng(2024);
  GlobalMemory mem;
  const auto base = mem.alloc(32);
  MemSystem ms(small_config(), &mem);
  MemOpDesc d;
  d.kind = MemOpKind::kScatterAdd;
  d.base = base;
  d.n_records = 500;
  d.record_words = 1;
  std::vector<double> src;
  std::vector<double> expect(32, 0.0);
  for (int i = 0; i < 500; ++i) {
    const auto idx = rng.uniform_u64(32);
    const double v = rng.uniform(-1, 1);
    d.indices.push_back(idx);
    src.push_back(v);
    expect[idx] += v;
  }
  ms.issue(d, nullptr, &src);
  run_to_completion(ms);
  for (int i = 0; i < 32; ++i) {
    EXPECT_NEAR(mem.read(base + static_cast<std::uint64_t>(i)), expect[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(MemSystem, RepeatedGatherHitsInCache) {
  GlobalMemory mem;
  const auto base = mem.alloc(256);
  MemSystemConfig cfg = small_config();
  MemSystem ms(cfg, &mem);
  MemOpDesc d;
  d.kind = MemOpKind::kLoadGather;
  d.base = base;
  d.n_records = 16;
  d.record_words = 8;
  for (int i = 0; i < 16; ++i) d.indices.push_back(static_cast<std::uint64_t>(i % 4));
  std::vector<double> dst;
  ms.issue(d, &dst, nullptr);
  run_to_completion(ms);
  // In-flight repeats fold into MSHRs: only 4 distinct lines reach DRAM.
  EXPECT_EQ(ms.dram_stats().read_lines, 4);
  EXPECT_GT(ms.cache_stats().secondary_misses, 0);
  // A second pass over the now-resident lines hits outright.
  std::vector<double> dst2;
  ms.issue(d, &dst2, nullptr);
  run_to_completion(ms);
  EXPECT_EQ(ms.dram_stats().read_lines, 4);  // no new fetches
  EXPECT_GT(ms.cache_stats().hit_rate(), 0.45);
  EXPECT_EQ(dst2, dst);
}

TEST(MemSystem, ConcurrentOpsAllComplete) {
  GlobalMemory mem;
  const auto a = mem.alloc(4096);
  const auto b = mem.alloc(4096);
  MemSystem ms(small_config(), &mem);
  std::vector<double> d1, d2;
  MemOpDesc l1;
  l1.kind = MemOpKind::kLoadStrided;
  l1.base = a;
  l1.n_records = 512;
  l1.record_words = 8;
  MemOpDesc l2 = l1;
  l2.base = b;
  const auto id1 = ms.issue(l1, &d1, nullptr);
  const auto id2 = ms.issue(l2, &d2, nullptr);
  run_to_completion(ms);
  EXPECT_TRUE(ms.op_done(id1));
  EXPECT_TRUE(ms.op_done(id2));
  EXPECT_EQ(ms.stats().words_loaded, 8192);
}

TEST(MemSystem, SequentialLoadApproachesDramPeak) {
  GlobalMemory mem;
  const auto base = mem.alloc(65536);
  MemSystemConfig cfg = small_config();
  MemSystem ms(cfg, &mem);
  MemOpDesc d;
  d.kind = MemOpKind::kLoadStrided;
  d.base = base;
  d.n_records = 8192;
  d.record_words = 8;
  std::vector<double> dst;
  ms.issue(d, &dst, nullptr);
  const auto cycles = run_to_completion(ms);
  const double words_per_cycle = 65536.0 / static_cast<double>(cycles);
  const double dram_peak = cfg.dram.n_channels * cfg.dram.channel_words_per_cycle;
  EXPECT_GT(words_per_cycle, 0.6 * dram_peak);   // streams well
  EXPECT_LT(words_per_cycle, dram_peak * 1.01);  // never exceeds peak
}

TEST(MemSystem, AllDoneWaitsForDramToGoQuiet) {
  // Regression: all_done() used to ignore the DRAM's own state, reporting
  // completion while posted write-through words were still draining at
  // channel bandwidth. After all_done() the DRAM must be idle: further
  // ticks accrue no busy cycles.
  GlobalMemory mem;
  const auto base = mem.alloc(4096);
  MemSystem ms(small_config(), &mem);
  MemOpDesc d;
  d.kind = MemOpKind::kStoreStrided;
  d.base = base;
  d.n_records = 512;
  d.record_words = 8;
  std::vector<double> src(4096, 1.5);
  ms.issue(d, nullptr, &src);
  run_to_completion(ms);
  const auto busy = ms.dram_stats().busy_cycles;
  for (int i = 0; i < 500; ++i) ms.tick();
  EXPECT_EQ(ms.dram_stats().busy_cycles, busy);
  EXPECT_TRUE(ms.all_done());
}

TEST(MemSystem, ScatterAddCombiningFullRetriesAndCountsStall) {
  // Regression: the scatter-add miss-fill path ignored the combining
  // store's try_allocate result, so a full combining store neither held
  // the request head-of-line nor surfaced in the `stalled` counter. With
  // one combining entry per bank and two cold lines on the same bank, the
  // second addition must retry (stalled > 0) and the sums stay exact.
  GlobalMemory mem;
  const auto base = mem.alloc(128);
  ASSERT_EQ(base, 0u);  // line/bank mapping below assumes base 0
  MemSystemConfig cfg = small_config();
  cfg.scatter_add.combining_entries = 1;
  MemSystem ms(cfg, &mem);
  MemOpDesc d;
  d.kind = MemOpKind::kScatterAdd;
  d.base = base;
  d.n_records = 8;
  d.record_words = 1;
  // Words 0 and 64: distinct cache lines, same bank (8 banks x 8-word
  // lines), alternating so every other addition finds the single
  // combining entry held by the other address.
  d.indices = {0, 64, 0, 64, 0, 64, 0, 64};
  const std::vector<double> src = {1, 10, 2, 20, 3, 30, 4, 40};
  ms.issue(d, nullptr, &src);
  run_to_completion(ms);
  EXPECT_DOUBLE_EQ(mem.read(base + 0), 10.0);
  EXPECT_DOUBLE_EQ(mem.read(base + 64), 100.0);
  EXPECT_GT(ms.scatter_add_stats().stalled, 0);
  EXPECT_EQ(ms.scatter_add_stats().requests, 8);
}

TEST(MemSystem, ZeroLengthOpCompletesImmediately) {
  GlobalMemory mem;
  mem.alloc(8);
  MemSystem ms(small_config(), &mem);
  MemOpDesc d;
  d.kind = MemOpKind::kLoadStrided;
  d.n_records = 0;
  std::vector<double> dst;
  const auto id = ms.issue(d, &dst, nullptr);
  EXPECT_TRUE(ms.op_done(id));
  EXPECT_TRUE(dst.empty());
}

}  // namespace
}  // namespace smd::mem
