#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/kernel/cost.h"
#include "src/kernel/interp.h"
#include "src/kernel/ir.h"
#include "src/kernel/schedule.h"

namespace smd::kernel {
namespace {

using Reg = KernelBuilder::Reg;

/// y = a*x + b elementwise over an input stream.
KernelDef make_axpb(double a, double b) {
  KernelBuilder kb("axpb");
  const int in = kb.stream_in("x", 1);
  const int out = kb.stream_out("y", 1);
  kb.section(Section::kPrologue);
  const Reg ra = kb.constant(a);
  const Reg rb = kb.constant(b);
  kb.section(Section::kBody);
  const auto x = kb.read(in, 1);
  const Reg y = kb.madd(ra, x[0], rb);
  kb.write(out, y, 1);
  return kb.build();
}

TEST(Ir, BuilderProducesValidKernel) {
  const KernelDef k = make_axpb(2.0, 1.0);
  EXPECT_EQ(k.streams.size(), 2u);
  EXPECT_EQ(k.body.size(), 3u);
  EXPECT_NO_THROW(k.validate());
}

TEST(Ir, ValidateCatchesBadStreamDirection) {
  KernelDef k = make_axpb(1.0, 0.0);
  // Flip the read to target the output stream.
  for (auto& in : k.body) {
    if (in.op == Opcode::kRead) in.stream = 1;
  }
  EXPECT_THROW(k.validate(), std::runtime_error);
}

TEST(Ir, ValidateCatchesRegisterOverflow) {
  KernelDef k = make_axpb(1.0, 0.0);
  k.n_regs = 1;
  EXPECT_THROW(k.validate(), std::runtime_error);
}

TEST(Ir, CensusCountsMaddAsTwoFlops) {
  const KernelDef k = make_axpb(2.0, 1.0);
  const FlopCensus c = k.body_census();
  EXPECT_EQ(c.flops, 2);
  EXPECT_EQ(c.fpu_ops, 1);
  EXPECT_EQ(c.words_read, 1);
  EXPECT_EQ(c.words_written, 1);
}

TEST(Ir, RsqrtCountsAsDividePlusSqrt) {
  KernelBuilder kb("r");
  const int in = kb.stream_in("x", 1);
  const int out = kb.stream_out("y", 1);
  const auto x = kb.read(in, 1);
  const Reg y = kb.rsqrt(x[0]);
  kb.write(out, y, 1);
  const FlopCensus c = kb.build().body_census();
  EXPECT_EQ(c.divides, 1);
  EXPECT_EQ(c.square_roots, 1);
  EXPECT_EQ(c.flops, 2);
}

TEST(Interp, AxpbComputesCorrectValues) {
  const KernelDef k = make_axpb(2.0, 1.0);
  Interpreter interp(k, 4);
  std::vector<double> x(32);
  std::iota(x.begin(), x.end(), 0.0);
  std::vector<double> y;
  StreamBindings b;
  b.inputs = {std::span<const double>(x), {}};
  b.outputs = {nullptr, &y};
  interp.run(b, 8);  // 8 rounds x 4 clusters = 32 elements
  ASSERT_EQ(y.size(), 32u);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(y[i], 2.0 * static_cast<double>(i) + 1.0);
  }
}

TEST(Interp, ThrowsOnExhaustedInput) {
  const KernelDef k = make_axpb(1.0, 0.0);
  Interpreter interp(k, 4);
  std::vector<double> x(3);  // too short for one round of 4 clusters
  std::vector<double> y;
  StreamBindings b;
  b.inputs = {std::span<const double>(x), {}};
  b.outputs = {nullptr, &y};
  EXPECT_THROW(interp.run(b, 1), std::runtime_error);
}

TEST(Interp, StatsCountExecutedOps) {
  const KernelDef k = make_axpb(1.0, 0.0);
  Interpreter interp(k, 4);
  std::vector<double> x(16, 1.0);
  std::vector<double> y;
  StreamBindings b;
  b.inputs = {std::span<const double>(x), {}};
  b.outputs = {nullptr, &y};
  const InterpStats s = interp.run(b, 4);
  EXPECT_EQ(s.body_iterations, 16);
  EXPECT_EQ(s.executed.flops, 2 * 16);  // one MADD per element
  EXPECT_EQ(s.srf_read_words, 16);
  EXPECT_EQ(s.srf_write_words, 16);
}

/// Sum-reduction kernel using a loop-carried accumulator and a blocked
/// outer section: per block of L inputs, writes one partial sum.
KernelDef make_block_sum(int L) {
  KernelBuilder kb("block_sum");
  const int in = kb.stream_in("x", 1);
  const int out = kb.stream_out("sum", 1);
  kb.block_len(L);
  kb.section(Section::kPrologue);
  const Reg zero = kb.constant(0.0);
  kb.section(Section::kOuterPre);
  // acc must be a stable register across iterations: allocate it up front.
  // (Allocate in prologue scope by moving zero into a fresh register.)
  const Reg acc = kb.mov(zero);
  kb.section(Section::kBody);
  const auto x = kb.read(in, 1);
  kb.add_to(acc, acc, x[0]);
  kb.section(Section::kOuterPost);
  kb.write(out, acc, 1);
  return kb.build();
}

TEST(Interp, BlockedReductionSumsPerBlock) {
  const int L = 4;
  const KernelDef k = make_block_sum(L);
  Interpreter interp(k, 2);  // 2 clusters
  // 2 clusters x 3 rounds x L inputs = 24 values. Values are consumed in
  // (round, iteration, cluster) order.
  std::vector<double> x(24);
  std::iota(x.begin(), x.end(), 1.0);
  std::vector<double> sums;
  StreamBindings b;
  b.inputs = {std::span<const double>(x), {}};
  b.outputs = {nullptr, &sums};
  interp.run(b, 3);
  ASSERT_EQ(sums.size(), 6u);  // 3 rounds x 2 clusters
  // Round 0: cluster 0 gets x[0],x[2],x[4],x[6]; cluster 1 gets x[1],...
  EXPECT_DOUBLE_EQ(sums[0], 1 + 3 + 5 + 7);
  EXPECT_DOUBLE_EQ(sums[1], 2 + 4 + 6 + 8);
  const double total = std::accumulate(sums.begin(), sums.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 24.0 * 25.0 / 2.0);
}

/// Kernel with a conditional read: consumes a value from the `select`
/// stream only when the control word is non-zero, else reuses the last.
KernelDef make_cond_reader() {
  KernelBuilder kb("cond_reader");
  const int ctrl = kb.stream_in("ctrl", 1);
  const int data = kb.stream_in("data", 1, /*conditional=*/true);
  const int out = kb.stream_out("y", 1);
  kb.section(Section::kPrologue);
  const Reg cur = kb.constant(-1.0);  // stable register, persists
  kb.section(Section::kBody);
  const auto c = kb.read(ctrl, 1);
  kb.read_cond_to(data, cur, 1, c[0]);
  kb.write(out, cur, 1);
  return kb.build();
}

TEST(Interp, ConditionalReadCompactsAcrossClusters) {
  const KernelDef k = make_cond_reader();
  Interpreter interp(k, 2);
  // Round-major control: iteration 0 -> clusters {1,0}: only cluster 1
  // pulls; iteration 1 -> both pull.
  const std::vector<double> ctrl = {0, 1, 1, 1};
  const std::vector<double> data = {10, 20, 30};
  std::vector<double> y;
  StreamBindings b;
  b.inputs = {std::span<const double>(ctrl), std::span<const double>(data), {}};
  b.outputs = {nullptr, nullptr, &y};
  const InterpStats s = interp.run(b, 2);
  ASSERT_EQ(y.size(), 4u);
  // iter 0: cluster0 keeps -1, cluster1 pulls 10.
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
  // iter 1: cluster0 pulls 20, cluster1 pulls 30 (cluster order).
  EXPECT_DOUBLE_EQ(y[2], 20.0);
  EXPECT_DOUBLE_EQ(y[3], 30.0);
  EXPECT_EQ(s.cond_accesses, 4);
  EXPECT_EQ(s.cond_taken, 3);
}

TEST(Interp, SelAndCmpSemantics) {
  KernelBuilder kb("selcmp");
  const int in = kb.stream_in("x", 2);
  const int out = kb.stream_out("y", 1);
  const auto x = kb.read(in, 2);
  const Reg lt = kb.cmp_lt(x[0], x[1]);
  const Reg y = kb.sel(lt, x[0], x[1]);  // min(x0, x1)
  kb.write(out, y, 1);
  const KernelDef k = kb.build();
  Interpreter interp(k, 1);
  const std::vector<double> x_data = {3, 7, 9, 2};
  std::vector<double> y_data;
  StreamBindings b;
  b.inputs = {std::span<const double>(x_data), {}};
  b.outputs = {nullptr, &y_data};
  interp.run(b, 2);
  ASSERT_EQ(y_data.size(), 2u);
  EXPECT_DOUBLE_EQ(y_data[0], 3.0);
  EXPECT_DOUBLE_EQ(y_data[1], 2.0);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(Schedule, ResourceBoundRespected) {
  const KernelDef k = make_axpb(2.0, 1.0);
  ScheduleOptions opts;
  const Schedule s = schedule_body(k, opts);
  // 1 FPU op and 2 stream words per iteration: II is tiny but >= 1.
  EXPECT_GE(s.ii, 1);
  EXPECT_LE(s.fpu_occupancy, 1.0 + 1e-9);
}

TEST(Schedule, IterativeOpsOccupyConsecutiveSlots) {
  KernelBuilder kb("divs");
  const int in = kb.stream_in("x", 1);
  const int out = kb.stream_out("y", 1);
  const auto x = kb.read(in, 1);
  const Reg one = kb.constant(1.0);
  const Reg y = kb.div(one, x[0]);
  kb.write(out, y, 1);
  const KernelDef k = kb.build();
  const Schedule s = schedule_body(k, {});
  // A divide needs 8 consecutive slots on one FPU: II >= 8.
  EXPECT_GE(s.ii, op_cost(Opcode::kDiv).fpu_slots);
}

TEST(Schedule, DependenceLatencyRespected) {
  // Chain of dependent adds: the list schedule must be at least
  // chain-length x latency deep.
  KernelBuilder kb("chain");
  const int in = kb.stream_in("x", 1);
  const int out = kb.stream_out("y", 1);
  auto x = kb.read(in, 1);
  Reg v = x[0];
  const int chain = 6;
  for (int i = 0; i < chain; ++i) v = kb.add(v, v);
  kb.write(out, v, 1);
  const KernelDef k = kb.build();
  ScheduleOptions opts;
  opts.software_pipeline = false;
  const Schedule s = schedule_body(k, opts);
  EXPECT_GE(s.depth, chain * op_cost(Opcode::kAdd).latency);
}

TEST(Schedule, PipeliningBeatsListScheduleOnDeepKernels) {
  // Many independent multiply chains: the modulo schedule should be
  // issue-bound while the plain list schedule pays the full depth.
  KernelBuilder kb("deep");
  const int in = kb.stream_in("x", 4);
  const int out = kb.stream_out("y", 4);
  auto x = kb.read(in, 4);
  std::vector<Reg> ys;
  for (int c = 0; c < 4; ++c) {
    Reg v = x[static_cast<std::size_t>(c)];
    for (int i = 0; i < 5; ++i) v = kb.mul(v, v);
    ys.push_back(v);
  }
  // Move results into a contiguous block for the stream write.
  const auto block = kb.alloc_n(4);
  for (int c = 0; c < 4; ++c) kb.mov_to(block[static_cast<std::size_t>(c)], ys[static_cast<std::size_t>(c)]);
  kb.write(out, block[0], 4);
  const KernelDef k = kb.build();

  ScheduleOptions nosp;
  nosp.software_pipeline = false;
  const Schedule before = schedule_body(k, nosp);
  ScheduleOptions sp;
  sp.software_pipeline = true;
  const Schedule after = schedule_body(k, sp);
  EXPECT_LT(after.cycles_per_iteration(), before.cycles_per_iteration());
}

TEST(Schedule, UnrollHalvesPerIterationCost) {
  const KernelDef k = make_axpb(2.0, 1.0);
  ScheduleOptions u1;
  u1.unroll = 1;
  ScheduleOptions u2;
  u2.unroll = 2;
  const Schedule s1 = schedule_body(k, u1);
  const Schedule s2 = schedule_body(k, u2);
  // Unrolling amortizes: per-iteration cost must not grow.
  EXPECT_LE(s2.cycles_per_iteration(), s1.cycles_per_iteration() + 1e-9);
}

TEST(Schedule, LoopCarriedAccumulatorBoundsII) {
  // acc += x every iteration: recurrence forces II >= ADD latency.
  KernelBuilder kb("accum");
  const int in = kb.stream_in("x", 1);
  const int out = kb.stream_out("y", 1);
  kb.section(Section::kPrologue);
  const Reg acc = kb.constant(0.0);
  kb.section(Section::kBody);
  const auto x = kb.read(in, 1);
  kb.add_to(acc, acc, x[0]);
  kb.write(out, acc, 1);
  const KernelDef k = kb.build();
  const Schedule s = schedule_body(k, {});
  EXPECT_GE(s.ii, op_cost(Opcode::kAdd).latency);
}

TEST(Schedule, NoFpuOversubscription) {
  // Property: in any schedule, no more than n_fpus slot-reservations per
  // cycle. Verified by reconstructing the modulo reservation table.
  KernelBuilder kb("many");
  const int in = kb.stream_in("x", 8);
  const int out = kb.stream_out("y", 8);
  auto x = kb.read(in, 8);
  const auto y = kb.alloc_n(8);
  for (int i = 0; i < 8; ++i) {
    kb.mov_to(y[static_cast<std::size_t>(i)],
              kb.madd(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)],
                      x[static_cast<std::size_t>((i + 1) % 8)]));
  }
  kb.write(out, y[0], 8);
  const KernelDef k = kb.build();
  ScheduleOptions opts;
  const Schedule s = schedule_body(k, opts);
  std::vector<std::vector<int>> usage(static_cast<std::size_t>(s.ii),
                                      std::vector<int>(4, 0));
  for (const auto& op : s.ops) {
    if (op.fpu < 0) continue;
    const OpCost c = op_cost(op.op);
    for (int kslot = 0; kslot < c.fpu_slots; ++kslot) {
      ++usage[static_cast<std::size_t>((op.cycle + kslot) % s.ii)]
             [static_cast<std::size_t>(op.fpu)];
    }
  }
  for (const auto& row : usage) {
    for (int count : row) EXPECT_LE(count, 1);
  }
}

TEST(Schedule, AsciiRendersGrid) {
  const KernelDef k = make_axpb(2.0, 1.0);
  const Schedule s = schedule_body(k, {});
  const std::string a = s.ascii();
  EXPECT_NE(a.find("FPU0"), std::string::npos);
  EXPECT_NE(a.find("MADD"), std::string::npos);
}

TEST(Schedule, StraightlineCyclesPositive) {
  const KernelDef k = make_axpb(1.0, 1.0);
  EXPECT_GT(straightline_cycles(k.body, {}), 0);
  EXPECT_EQ(straightline_cycles({}, {}), 0);
}

}  // namespace
}  // namespace smd::kernel
