#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/kernel/ir.h"
#include "src/obs/json.h"
#include "src/util/rng.h"
#include "src/sim/config.h"
#include "src/sim/kernelexec.h"
#include "src/sim/machine.h"
#include "src/sim/srf.h"
#include "src/sim/trace.h"

namespace smd::sim {
namespace {

using Reg = kernel::KernelBuilder::Reg;

/// y = x * x elementwise.
kernel::KernelDef make_square() {
  kernel::KernelBuilder kb("square");
  const int in = kb.stream_in("x", 1);
  const int out = kb.stream_out("y", 1);
  const auto x = kb.read(in, 1);
  const Reg y = kb.mul(x[0], x[0]);
  kb.write(out, y, 1);
  return kb.build();
}

/// A machine config scaled down for tests.
MachineConfig test_config() {
  MachineConfig cfg = MachineConfig::merrimac();
  cfg.kernel_startup_cycles = 10;
  cfg.mem.dram.access_latency = 20;
  return cfg;
}

TEST(Config, MerrimacParametersMatchPaperTable1) {
  const MachineConfig cfg = MachineConfig::merrimac();
  EXPECT_EQ(cfg.n_clusters, 16);
  EXPECT_EQ(cfg.fpus_per_cluster, 4);
  EXPECT_DOUBLE_EQ(cfg.clock_ghz, 1.0);
  EXPECT_DOUBLE_EQ(cfg.peak_gflops(), 128.0);
  EXPECT_EQ(cfg.srf_words, 131072);             // 1 MB
  EXPECT_EQ(cfg.mem.cache.total_words, 131072); // 1 MB
  EXPECT_EQ(cfg.mem.cache.n_banks, 8);
  EXPECT_EQ(cfg.mem.n_address_generators, 2);
  EXPECT_EQ(cfg.mem.scatter_add.latency, 4);
  EXPECT_EQ(cfg.mem.scatter_add.combining_entries, 8);
  // 38.4 GB/s peak DRAM.
  EXPECT_NEAR(cfg.mem.dram.n_channels * cfg.mem.dram.channel_words_per_cycle * 8.0,
              38.4, 1e-9);
}

TEST(Srf, AllocationAccounting) {
  SrfAllocator srf(100);
  EXPECT_TRUE(srf.try_alloc(60));
  EXPECT_FALSE(srf.try_alloc(50));
  EXPECT_TRUE(srf.try_alloc(40));
  EXPECT_EQ(srf.in_use(), 100);
  srf.free(60);
  EXPECT_EQ(srf.in_use(), 40);
  EXPECT_EQ(srf.peak(), 100);
}

TEST(Timeline, BusyAndOverlap) {
  Timeline tl;
  tl.add(Lane::kKernel, 0, 10, "k");
  tl.add(Lane::kMemory, 5, 15, "m");
  EXPECT_EQ(tl.busy_cycles(Lane::kKernel, 20), 10u);
  EXPECT_EQ(tl.busy_cycles(Lane::kMemory, 20), 10u);
  EXPECT_EQ(tl.overlap_cycles(20), 5u);
}

TEST(Timeline, UnionOfOverlappingIntervals) {
  Timeline tl;
  tl.add(Lane::kMemory, 0, 10, "a");
  tl.add(Lane::kMemory, 5, 12, "b");
  EXPECT_EQ(tl.busy_cycles(Lane::kMemory, 20), 12u);
}

TEST(Timeline, AsciiHasRows) {
  Timeline tl;
  tl.add(Lane::kKernel, 0, 100, "k");
  const std::string s = tl.ascii(100, 25);
  EXPECT_NE(s.find("kernel"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Timeline, IntervalStraddlingHorizonIsClipped) {
  Timeline tl;
  tl.add(Lane::kKernel, 90, 120, "k");
  EXPECT_EQ(tl.busy_cycles(Lane::kKernel, 100), 10u);
  EXPECT_EQ(tl.busy_cycles(Lane::kKernel, 200), 30u);
  // A clip that lands exactly on the interval start must not create an
  // inverted or empty span in merged().
  EXPECT_TRUE(tl.merged(Lane::kKernel, 90).empty());
  EXPECT_EQ(tl.busy_cycles(Lane::kKernel, 90), 0u);
}

TEST(Timeline, ZeroLengthIntervalsDoNotPolluteOccupancy) {
  // Regression: zero-length intervals used to be silently discarded by
  // add(); they are now kept as markers but must stay invisible to every
  // occupancy quantity, including when sandwiched between real spans.
  Timeline tl;
  tl.add(Lane::kMemory, 0, 10, "a");
  tl.add(Lane::kMemory, 10, 10, "marker");
  tl.add(Lane::kMemory, 10, 20, "b");
  EXPECT_EQ(tl.intervals().size(), 3u);
  EXPECT_EQ(tl.busy_cycles(Lane::kMemory, 100), 20u);
  const auto spans = tl.merged(Lane::kMemory, 100);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (std::pair<std::uint64_t, std::uint64_t>{0, 20}));
}

TEST(Timeline, StallLaneIsIndependentOfKernelAndMemory) {
  Timeline tl;
  tl.add(Lane::kKernel, 0, 50, "k");
  tl.add(Lane::kStall, 20, 40, "sdr-stall");
  EXPECT_EQ(tl.busy_cycles(Lane::kStall, 100), 20u);
  EXPECT_EQ(tl.busy_cycles(Lane::kKernel, 100), 50u);
  // overlap_cycles() is kernel x memory only; stalls do not participate.
  EXPECT_EQ(tl.overlap_cycles(100), 0u);
}

TEST(Timeline, ChromeTraceEmitsStallTrack) {
  Timeline tl;
  tl.add(Lane::kKernel, 0, 100, "kernel interact");
  tl.add(Lane::kStall, 40, 60, "sdr-stall");
  const obs::Json doc = obs::Json::parse(tl.chrome_trace_json(1.0).dump(2));
  int stall_slices = 0;
  bool stall_track_named = false;
  for (const obs::Json& e : doc.at("traceEvents").elements()) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "X" && e.at("cat").as_string() == "stall") ++stall_slices;
    if (ph == "M" && e.at("name").as_string() == "thread_name" &&
        e.at("args").at("name").as_string() == "SDR stall") {
      stall_track_named = true;
    }
  }
  EXPECT_EQ(stall_slices, 1);
  EXPECT_TRUE(stall_track_named);
}

TEST(Timeline, IntervalEntirelyPastHorizonIgnored) {
  Timeline tl;
  tl.add(Lane::kMemory, 150, 170, "m");
  EXPECT_EQ(tl.busy_cycles(Lane::kMemory, 100), 0u);
  EXPECT_TRUE(tl.merged(Lane::kMemory, 100).empty());
  EXPECT_EQ(tl.overlap_cycles(100), 0u);
}

TEST(Timeline, EmptyTimeline) {
  Timeline tl;
  EXPECT_TRUE(tl.empty());
  EXPECT_EQ(tl.busy_cycles(Lane::kKernel, 1000), 0u);
  EXPECT_EQ(tl.overlap_cycles(1000), 0u);
  // ASCII rendering of an empty timeline must not crash and still shows
  // the header.
  const std::string s = tl.ascii(100, 25);
  EXPECT_NE(s.find("kernel"), std::string::npos);
  EXPECT_EQ(s.find('#'), std::string::npos);
}

TEST(Timeline, MergedSpansAreSortedAndDisjoint) {
  Timeline tl;
  tl.add(Lane::kMemory, 40, 60, "c");
  tl.add(Lane::kMemory, 0, 10, "a");
  tl.add(Lane::kMemory, 5, 20, "b");
  tl.add(Lane::kMemory, 60, 70, "d");  // adjacent to c: merges
  const auto spans = tl.merged(Lane::kMemory, 1000);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (std::pair<std::uint64_t, std::uint64_t>{0, 20}));
  EXPECT_EQ(spans[1], (std::pair<std::uint64_t, std::uint64_t>{40, 70}));
}

TEST(Timeline, ChromeTraceJsonParsesBack) {
  Timeline tl;
  tl.add(Lane::kKernel, 0, 100, "kernel interact");
  tl.add(Lane::kMemory, 20, 80, "gather s1", /*track=*/1);
  const obs::Json doc = obs::Json::parse(tl.chrome_trace_json(1.0).dump(2));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
  int kernel_slices = 0, memory_slices = 0;
  for (const obs::Json& e : doc.at("traceEvents").elements()) {
    if (e.at("ph").as_string() != "X") continue;
    if (e.at("cat").as_string() == "kernel") ++kernel_slices;
    if (e.at("cat").as_string() == "memory") ++memory_slices;
    // At 1 GHz one cycle is one ns; ts/dur are microseconds.
    EXPECT_GE(e.at("dur").as_double(), 0.0);
  }
  EXPECT_EQ(kernel_slices, 1);
  EXPECT_EQ(memory_slices, 1);
}

// Reference occupancy implementation: the O(horizon) bitmap the Timeline
// used before the interval-merge rewrite. The property test pits the two
// against each other on randomized interval soups.
struct BitmapOccupancy {
  std::vector<bool> kernel, memory;
  explicit BitmapOccupancy(std::uint64_t horizon)
      : kernel(horizon, false), memory(horizon, false) {}
  void add(Lane lane, std::uint64_t start, std::uint64_t end) {
    auto& bits = lane == Lane::kKernel ? kernel : memory;
    for (std::uint64_t c = start; c < end && c < bits.size(); ++c)
      bits[c] = true;
  }
  std::uint64_t busy(Lane lane) const {
    const auto& bits = lane == Lane::kKernel ? kernel : memory;
    return static_cast<std::uint64_t>(std::count(bits.begin(), bits.end(), true));
  }
  std::uint64_t overlap() const {
    std::uint64_t n = 0;
    for (std::size_t c = 0; c < kernel.size(); ++c)
      if (kernel[c] && memory[c]) ++n;
    return n;
  }
};

TEST(TimelineProperty, IntervalMergeMatchesBitmapOnRandomSoups) {
  util::Rng rng(0xf16u);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t horizon = 1 + rng.uniform_u64(512);
    Timeline tl;
    BitmapOccupancy ref(horizon);
    const int n_intervals = static_cast<int>(rng.uniform_u64(40));
    for (int i = 0; i < n_intervals; ++i) {
      const Lane lane = rng.uniform_u64(2) ? Lane::kKernel : Lane::kMemory;
      // Deliberately allow zero-length, straddling, and fully-out-of-range
      // intervals: the generator range is [0, 2*horizon).
      const std::uint64_t a = rng.uniform_u64(2 * horizon);
      const std::uint64_t b = rng.uniform_u64(2 * horizon);
      const std::uint64_t start = std::min(a, b), end = std::max(a, b);
      tl.add(lane, start, end, "iv", static_cast<int>(rng.uniform_u64(3)));
      ref.add(lane, start, end);
    }
    EXPECT_EQ(tl.busy_cycles(Lane::kKernel, horizon), ref.busy(Lane::kKernel))
        << "trial " << trial << " horizon " << horizon;
    EXPECT_EQ(tl.busy_cycles(Lane::kMemory, horizon), ref.busy(Lane::kMemory))
        << "trial " << trial << " horizon " << horizon;
    EXPECT_EQ(tl.overlap_cycles(horizon), ref.overlap())
        << "trial " << trial << " horizon " << horizon;
    // The merged spans themselves are sorted, disjoint, clipped.
    for (const Lane lane : {Lane::kKernel, Lane::kMemory}) {
      std::uint64_t prev_end = 0;
      bool first = true;
      for (const auto& [s, e] : tl.merged(lane, horizon)) {
        EXPECT_LT(s, e);
        EXPECT_LE(e, horizon);
        if (!first) {
          EXPECT_GT(s, prev_end);  // disjoint and non-adjacent
        }
        prev_end = e;
        first = false;
      }
    }
  }
}

TEST(KernelCost, BlockedKernelCostsScaleWithRounds) {
  kernel::KernelBuilder kb("blocked");
  const int in = kb.stream_in("x", 1);
  const int out = kb.stream_out("y", 1);
  kb.block_len(4);
  kb.section(kernel::Section::kPrologue);
  const Reg zero = kb.constant(0.0);
  kb.section(kernel::Section::kOuterPre);
  const Reg acc = kb.mov(zero);
  kb.section(kernel::Section::kBody);
  const auto x = kb.read(in, 1);
  kb.add_to(acc, acc, x[0]);
  kb.section(kernel::Section::kOuterPost);
  kb.write(out, acc, 1);
  const kernel::KernelDef def = kb.build();

  KernelCostCache cache(kernel::ScheduleOptions{});
  const KernelCost& cost = cache.get(def);
  EXPECT_TRUE(cost.has_outer);
  const auto c1 = cost.cycles_for(1);
  const auto c10 = cost.cycles_for(10);
  EXPECT_GT(c1, 0u);
  // Linear in rounds beyond the prologue.
  EXPECT_EQ(c10 - cost.cycles_for(9), (c10 - static_cast<std::uint64_t>(cost.prologue_cycles)) / 10);
}

TEST(Machine, EndToEndLoadKernelStore) {
  Machine machine(test_config());
  auto& mem = machine.memory();
  const int n = 1024;
  const auto in_base = mem.alloc(n);
  const auto out_base = mem.alloc(n);
  for (int i = 0; i < n; ++i) mem.write(in_base + static_cast<std::uint64_t>(i), i * 0.25);

  const kernel::KernelDef def = make_square();
  StreamProgram prog;
  const StreamId s_in = prog.new_stream(n);
  const StreamId s_out = prog.new_stream(n);
  mem::MemOpDesc load;
  load.kind = mem::MemOpKind::kLoadStrided;
  load.base = in_base;
  load.n_records = n;
  load.record_words = 1;
  prog.load(load, s_in);
  prog.kernel(&def, {s_in, s_out}, n / machine.config().n_clusters);
  mem::MemOpDesc store;
  store.kind = mem::MemOpKind::kStoreStrided;
  store.base = out_base;
  store.n_records = n;
  store.record_words = 1;
  prog.store(store, s_out);

  const RunStats stats = machine.run(prog);
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_EQ(stats.n_kernel_launches, 1);
  EXPECT_EQ(stats.n_memory_ops, 2);
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(mem.read(out_base + static_cast<std::uint64_t>(i)),
                     (i * 0.25) * (i * 0.25));
  }
}

TEST(Machine, StripsOverlapMemoryWithCompute) {
  // Two independent strips: the second strip's load should overlap the
  // first strip's kernel under the transfer-scoped SDR policy.
  Machine machine(test_config());
  auto& mem = machine.memory();
  const int n = 8192;
  const auto in_base = mem.alloc(2 * n);
  const auto out_base = mem.alloc(2 * n);
  const kernel::KernelDef def = make_square();

  StreamProgram prog;
  for (int strip = 0; strip < 2; ++strip) {
    const StreamId s_in = prog.new_stream(n);
    const StreamId s_out = prog.new_stream(n);
    mem::MemOpDesc load;
    load.kind = mem::MemOpKind::kLoadStrided;
    load.base = in_base + static_cast<std::uint64_t>(strip * n);
    load.n_records = n;
    load.record_words = 1;
    prog.load(load, s_in);
    prog.kernel(&def, {s_in, s_out}, n / 16);
    mem::MemOpDesc store;
    store.kind = mem::MemOpKind::kStoreStrided;
    store.base = out_base + static_cast<std::uint64_t>(strip * n);
    store.n_records = n;
    store.record_words = 1;
    prog.store(store, s_out);
  }
  const RunStats stats = machine.run(prog);
  EXPECT_GT(stats.overlap_cycles, 0u);
}

TEST(Machine, ConservativeSdrPolicySerializes) {
  // Figure 7: under the conservative SDR policy, later transfers wait for
  // the kernels consuming earlier streams, reducing memory/compute overlap
  // and stretching the run.
  // A compute-heavy kernel so kernel time ~ memory time, the regime where
  // the SDR policy decides how much memory latency hides under compute.
  static const kernel::KernelDef heavy = [] {
    kernel::KernelBuilder kb("heavy");
    const int in = kb.stream_in("x", 1);
    const int out = kb.stream_out("y", 1);
    auto x = kb.read(in, 1);
    Reg v = x[0];
    for (int i = 0; i < 6; ++i) v = kb.mul(v, v);
    v = kb.rsqrt(v);
    kb.write(out, v, 1);
    return kb.build();
  }();
  auto run_with = [&](SdrPolicy policy) {
    MachineConfig cfg = test_config();
    cfg.sdr_policy = policy;
    cfg.n_stream_descriptor_registers = 1;
    Machine machine(cfg);
    auto& mem = machine.memory();
    const int n = 4096;
    const kernel::KernelDef& def = heavy;
    const auto in_base = mem.alloc(8 * n);
    const auto out_base = mem.alloc(8 * n);
    StreamProgram prog;
    for (int strip = 0; strip < 8; ++strip) {
      const StreamId s_in = prog.new_stream(n);
      const StreamId s_out = prog.new_stream(n);
      mem::MemOpDesc load;
      load.kind = mem::MemOpKind::kLoadStrided;
      load.base = in_base + static_cast<std::uint64_t>(strip * n);
      load.n_records = n;
      load.record_words = 1;
      prog.load(load, s_in);
      prog.kernel(&def, {s_in, s_out}, n / 16);
      mem::MemOpDesc store;
      store.kind = mem::MemOpKind::kStoreStrided;
      store.base = out_base + static_cast<std::uint64_t>(strip * n);
      store.n_records = n;
      store.record_words = 1;
      prog.store(store, s_out);
    }
    return machine.run(prog);
  };
  const RunStats conservative = run_with(SdrPolicy::kConservative);
  const RunStats fixed = run_with(SdrPolicy::kTransferScoped);
  EXPECT_GT(conservative.cycles, fixed.cycles);
  // The stall lane the controller emits must agree exactly with the
  // per-cycle sdr_stall_cycles counter -- smdprof's taxonomy relies on it.
  for (const RunStats* s : {&conservative, &fixed}) {
    EXPECT_EQ(s->timeline.busy_cycles(Lane::kStall, s->cycles),
              s->sdr_stall_cycles);
  }
  EXPECT_GT(conservative.sdr_stall_cycles, 0u);
  // The fixed policy hides a larger fraction of memory time under compute.
  const double ov_fixed = static_cast<double>(fixed.overlap_cycles) /
                          static_cast<double>(fixed.mem_busy_cycles);
  const double ov_cons = static_cast<double>(conservative.overlap_cycles) /
                         static_cast<double>(conservative.mem_busy_cycles);
  EXPECT_GT(ov_fixed, ov_cons);
}

TEST(Machine, SrfBlockedOpDoesNotCountAsSdrStall) {
  // Regression for the stall-attribution bug: a load waiting while the
  // single SDR is busy used to be charged to sdr_stall_cycles even when it
  // could not have issued anyway because its SRF allocation would fail.
  // Only a cycle where an op is blocked *solely* on SDRs is an SDR stall.
  //
  // Construction: strip A = load s0(512) -> square -> store s1(512);
  // strip B = load s2(768) -> store. With srf_words = 1200, B's load is
  // SRF-blocked at every instant A's transfers hold the SDR:
  //   * during A's load: allocation is out of order (s1 not allocated);
  //   * during A's store: 688 free words < 768.
  // So the run must report zero SDR stalls despite long SDR-busy waits.
  MachineConfig cfg = test_config();
  cfg.n_stream_descriptor_registers = 1;
  cfg.srf_words = 1200;
  Machine machine(cfg);
  auto& mem = machine.memory();
  const kernel::KernelDef def = make_square();
  const auto a_base = mem.alloc(512), a_out = mem.alloc(512);
  const auto b_base = mem.alloc(768), b_out = mem.alloc(768);

  StreamProgram prog;
  const StreamId s0 = prog.new_stream(512);
  const StreamId s1 = prog.new_stream(512);
  const StreamId s2 = prog.new_stream(768);
  mem::MemOpDesc load_a;
  load_a.kind = mem::MemOpKind::kLoadStrided;
  load_a.base = a_base;
  load_a.n_records = 512;
  load_a.record_words = 1;
  prog.load(load_a, s0);
  prog.kernel(&def, {s0, s1}, 512 / 16);
  mem::MemOpDesc store_a = load_a;
  store_a.kind = mem::MemOpKind::kStoreStrided;
  store_a.base = a_out;
  prog.store(store_a, s1);
  mem::MemOpDesc load_b;
  load_b.kind = mem::MemOpKind::kLoadStrided;
  load_b.base = b_base;
  load_b.n_records = 768;
  load_b.record_words = 1;
  prog.load(load_b, s2);
  mem::MemOpDesc store_b = load_b;
  store_b.kind = mem::MemOpKind::kStoreStrided;
  store_b.base = b_out;
  prog.store(store_b, s2);

  const RunStats stats = machine.run(prog);
  EXPECT_EQ(stats.sdr_stall_cycles, 0u);
  EXPECT_EQ(stats.timeline.busy_cycles(Lane::kStall, stats.cycles), 0u);
  EXPECT_EQ(stats.n_memory_ops, 4);
}

TEST(Machine, DetectsBindingArityMismatch) {
  Machine machine(test_config());
  const kernel::KernelDef def = make_square();
  StreamProgram prog;
  const StreamId s_in = prog.new_stream(16);
  prog.kernel(&def, {s_in}, 1);  // missing the output binding
  EXPECT_THROW(machine.run(prog), std::runtime_error);
}

TEST(Machine, SrfPressureLimitsInFlightStrips) {
  // With a tiny SRF only one strip fits at a time: the run still completes
  // (capacity stalls, not deadlock) and peak SRF stays within bounds.
  MachineConfig cfg = test_config();
  cfg.srf_words = 3000;
  Machine machine(cfg);
  auto& mem = machine.memory();
  const int n = 1024;
  const auto in_base = mem.alloc(4 * n);
  const auto out_base = mem.alloc(4 * n);
  const kernel::KernelDef def = make_square();
  StreamProgram prog;
  for (int strip = 0; strip < 4; ++strip) {
    const StreamId s_in = prog.new_stream(n);
    const StreamId s_out = prog.new_stream(n);
    mem::MemOpDesc load;
    load.kind = mem::MemOpKind::kLoadStrided;
    load.base = in_base + static_cast<std::uint64_t>(strip * n);
    load.n_records = n;
    load.record_words = 1;
    prog.load(load, s_in);
    prog.kernel(&def, {s_in, s_out}, n / 16);
    mem::MemOpDesc store;
    store.kind = mem::MemOpKind::kStoreStrided;
    store.base = out_base + static_cast<std::uint64_t>(strip * n);
    store.n_records = n;
    store.record_words = 1;
    prog.store(store, s_out);
  }
  const RunStats stats = machine.run(prog);
  EXPECT_LE(stats.srf_peak_words, cfg.srf_words);
  for (int i = 0; i < 4 * n; ++i) {
    const double x = mem.read(in_base + static_cast<std::uint64_t>(i));
    EXPECT_DOUBLE_EQ(mem.read(out_base + static_cast<std::uint64_t>(i)), x * x);
  }
}

}  // namespace
}  // namespace smd::sim
