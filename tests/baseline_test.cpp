#include <gtest/gtest.h>

#include <cmath>

#include "src/baseline/gromacs_like.h"
#include "src/baseline/p4model.h"
#include "src/core/kernels.h"
#include "src/md/force_ref.h"
#include "src/md/neighborlist.h"
#include "src/md/system.h"

namespace smd::baseline {
namespace {

TEST(ApproxRsqrt, AccurateToSinglePrecision) {
  for (float x : {1e-4f, 0.01f, 0.33f, 1.0f, 2.0f, 123.0f, 1e6f}) {
    const float got = approx_rsqrt(x);
    const float want = 1.0f / std::sqrt(x);
    EXPECT_NEAR(got / want, 1.0f, 1e-5f) << x;
  }
}

TEST(SseStyleKernel, MatchesReferenceToSinglePrecision) {
  md::WaterBoxOptions opts;
  opts.n_molecules = 216;
  const md::WaterSystem sys = md::build_water_box(opts);
  const md::NeighborList list = md::build_neighbor_list(sys, 0.8);
  const md::ForceEnergy ref = md::compute_forces_reference(sys, list);
  const md::ForceEnergy sse = compute_forces_sse_style(sys, list);
  // Single precision + approximate rsqrt: expect ~1e-5 relative agreement.
  EXPECT_LT(md::max_force_rel_err(ref.force, sse.force), 1e-3);
  EXPECT_NEAR(sse.e_coulomb / ref.e_coulomb, 1.0, 1e-3);
}

TEST(SseStyleKernel, NewtonThirdLaw) {
  md::WaterBoxOptions opts;
  opts.n_molecules = 64;
  const md::WaterSystem sys = md::build_water_box(opts);
  const md::NeighborList list = md::build_neighbor_list(sys, 0.7);
  const md::ForceEnergy fe = compute_forces_sse_style(sys, list);
  md::Vec3 total{};
  for (const auto& f : fe.force) total += f;
  EXPECT_NEAR(total.norm(), 0.0, 5e-2);  // single-precision accumulation
}

TEST(P4Model, InTheGromacsPerformanceBand) {
  // GROMACS's hand-tuned SSE water loops sustained a few GFLOPS on a
  // 2.4 GHz Pentium 4 -- the model must land in that band, well below the
  // 9.6 GFLOPS single-precision peak.
  const P4Model model;
  const kernel::FlopCensus census = core::interaction_flops(md::spc());
  const double gflops = model.solution_gflops(census);
  EXPECT_GT(gflops, 1.0);
  EXPECT_LT(gflops, 9.6 * 0.6);
}

TEST(P4Model, ScalesWithClock) {
  P4Model slow;
  slow.clock_ghz = 1.2;
  P4Model fast;
  fast.clock_ghz = 2.4;
  const kernel::FlopCensus census = core::interaction_flops(md::spc());
  EXPECT_NEAR(fast.solution_gflops(census) / slow.solution_gflops(census), 2.0,
              1e-9);
}

TEST(P4Model, OverheadSlowsItDown) {
  P4Model lean;
  lean.overhead_factor = 1.0;
  P4Model real;
  real.overhead_factor = 1.35;
  const kernel::FlopCensus census = core::interaction_flops(md::spc());
  EXPECT_GT(lean.solution_gflops(census), real.solution_gflops(census));
}

TEST(P4Model, CyclesPerInteractionPlausible) {
  const P4Model model;
  const kernel::FlopCensus census = core::interaction_flops(md::spc());
  const double cyc = model.cycles_per_interaction(census);
  // ~200 flops at 4-wide, half-rate issue, with overhead: O(100) cycles.
  EXPECT_GT(cyc, 50.0);
  EXPECT_LT(cyc, 500.0);
}

}  // namespace
}  // namespace smd::baseline
