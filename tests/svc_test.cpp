// Tests for the simulation service (src/svc/): wire-format round-trips
// and strictness, job-queue ordering and bounds, server lifecycle and
// structured rejections, the three dedup layers, cancellation and
// deadlines, and the two cross-cutting properties DESIGN.md section 13
// pins down -- counter conservation (submitted == completed + cancelled +
// rejected) and payload byte-identity across worker counts. The whole
// binary runs under the tsan preset in scripts/check.sh, so every
// assertion here doubles as a data-race probe.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/event_log.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/trace_event.h"
#include "src/svc/queue.h"
#include "src/svc/server.h"
#include "src/svc/telemetry.h"
#include "src/svc/wire.h"
#include "src/tune/runner.h"

namespace smd::svc {
namespace {

// Simulation cost dominates; keep test experiments small. 16 molecules
// simulates in ~10 ms; 64 in ~40 ms (used where a job must stay busy
// long enough to cancel behind).
constexpr int kSmall = 16;
constexpr int kSlow = 64;

struct Deltas {
  std::int64_t submitted, completed, cancelled, rejected, deduped, simulated,
      cache_hit;
};

class CounterProbe {
 public:
  CounterProbe() : reg_(obs::CounterRegistry::process()) {
    base_ = read();
  }
  Deltas delta() const {
    const Deltas now = read();
    return {now.submitted - base_.submitted, now.completed - base_.completed,
            now.cancelled - base_.cancelled, now.rejected - base_.rejected,
            now.deduped - base_.deduped,     now.simulated - base_.simulated,
            now.cache_hit - base_.cache_hit};
  }

 private:
  Deltas read() const {
    return {reg_.counter("svc.jobs.submitted"),
            reg_.counter("svc.jobs.completed"),
            reg_.counter("svc.jobs.cancelled"),
            reg_.counter("svc.jobs.rejected"),
            reg_.counter("svc.jobs.deduped"),
            reg_.counter("svc.jobs.simulated"),
            reg_.counter("svc.jobs.cache_hit")};
  }
  obs::CounterRegistry& reg_;
  Deltas base_{};
};

Request small_request(const std::string& id, core::Variant v = core::Variant::kVariable) {
  Request r;
  r.id = id;
  r.config.variant = v;
  r.n_molecules = kSmall;
  return r;
}

// ---- Wire format. ---------------------------------------------------------

TEST(Wire, RequestRoundTripAndDefaults) {
  Request r;
  r.id = "r1";
  r.config.variant = core::Variant::kFixed;
  r.config.fixed_list_length = 12;
  r.n_molecules = 128;
  r.priority = 3;
  r.timeout_ms = 250;
  const Request back = Request::from_json(r.to_json());
  EXPECT_EQ(back.id, "r1");
  EXPECT_EQ(back.config.key(), r.config.key());
  EXPECT_EQ(back.n_molecules, 128);
  EXPECT_EQ(back.priority, 3);
  EXPECT_EQ(back.timeout_ms, 250);

  // All fields optional: an empty object is the default request.
  const Request dflt = Request::from_json(obs::Json::object());
  EXPECT_EQ(dflt.config.key(), tune::Candidate{}.key());
  EXPECT_EQ(dflt.n_molecules, 900);
  EXPECT_EQ(dflt.priority, 0);
}

TEST(Wire, UnknownKeysAndBadBatchesThrow) {
  obs::Json j = obs::Json::object();
  j.set("frobnicate", 1);
  EXPECT_THROW(Request::from_json(j), WireError);

  obs::Json nested = obs::Json::object();
  obs::Json cfg = obs::Json::object();
  cfg.set("no_such_axis", 2);
  nested.set("config", std::move(cfg));
  EXPECT_THROW(Request::from_json(nested), WireError);

  EXPECT_THROW(parse_request_file(obs::Json("not a batch")), WireError);
  obs::Json vfuture = obs::Json::object();
  vfuture.set("schema_version", 999);
  vfuture.set("requests", obs::Json::array());
  EXPECT_THROW(parse_request_file(vfuture), WireError);
}

TEST(Wire, ErrorCodeNamesRoundTrip) {
  for (const ErrorCode c :
       {ErrorCode::kOk, ErrorCode::kBadRequest, ErrorCode::kQueueFull,
        ErrorCode::kShutdown, ErrorCode::kBudgetExceeded, ErrorCode::kCancelled,
        ErrorCode::kDeadlineExceeded, ErrorCode::kInternal}) {
    EXPECT_EQ(parse_error_code(error_code_name(c)), c);
  }
  EXPECT_THROW(parse_error_code("nonsense"), WireError);
}

TEST(Wire, RequestHashMixesMoleculeCount) {
  const tune::Candidate c;
  EXPECT_NE(request_hash(c, 64, tune::kModelVersion),
            request_hash(c, 128, tune::kModelVersion));
  EXPECT_EQ(request_hash(c, 64, tune::kModelVersion),
            request_hash(c, 64, tune::kModelVersion));
}

TEST(Wire, ResponsePayloadRoundTripsByteIdentically) {
  Response r;
  r.id = "x";
  r.config_hash = 0xabcdef0123456789ull;
  r.served_by = "sim";
  r.metrics.time_ms = 1.25;
  r.metrics.source = "sim";
  r.payload = payload_text(r.config_hash, tune::Candidate{}, 64, r.metrics);
  r.total_ns = 12345;
  const Response back = Response::from_json(r.to_json());
  EXPECT_EQ(back.payload, r.payload);
  EXPECT_EQ(back.config_hash, r.config_hash);
  EXPECT_EQ(back.total_ns, 12345);
}

// ---- Queue ordering and bounds. -------------------------------------------

std::shared_ptr<InflightJob> job(std::uint64_t hash, int priority) {
  auto j = std::make_shared<InflightJob>();
  j->hash = hash;
  j->priority = priority;
  return j;
}

TEST(Queue, PriorityThenFifo) {
  JobQueue q(16);
  ASSERT_TRUE(q.push(0, job(1, 0)));
  ASSERT_TRUE(q.push(5, job(2, 5)));
  ASSERT_TRUE(q.push(0, job(3, 0)));
  ASSERT_TRUE(q.push(5, job(4, 5)));
  // Priority 5 first (FIFO within: 2 then 4), then priority 0 (1 then 3).
  EXPECT_EQ(q.pop()->hash, 2u);
  EXPECT_EQ(q.pop()->hash, 4u);
  EXPECT_EQ(q.pop()->hash, 1u);
  EXPECT_EQ(q.pop()->hash, 3u);
}

TEST(Queue, CapacityAndCloseSemantics) {
  JobQueue q(2);
  EXPECT_TRUE(q.push(0, job(1, 0)));
  EXPECT_TRUE(q.push(0, job(2, 0)));
  EXPECT_FALSE(q.push(0, job(3, 0))) << "over-capacity push must fail";
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.peak_depth(), 2u);
  q.close();
  EXPECT_FALSE(q.push(0, job(4, 0))) << "closed queue must refuse pushes";
  // Already-queued jobs still drain after close; then nullptr forever.
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_EQ(q.pop(), nullptr);
}

// ---- Server lifecycle and structured rejections. --------------------------

TEST(Server, InvalidConfigurationThrows) {
  ServerOptions zero_workers;
  zero_workers.workers = 0;
  EXPECT_THROW(Server{zero_workers}, std::invalid_argument);
  ServerOptions zero_cap;
  zero_cap.queue_cap = 0;
  EXPECT_THROW(Server{zero_cap}, std::invalid_argument);
}

TEST(Server, StructuredRejections) {
  CounterProbe probe;
  ServerOptions opts;
  opts.workers = 1;
  opts.max_molecules = 32;
  Server server(opts);

  Request bad = small_request("bad");
  bad.n_molecules = -1;
  EXPECT_EQ(server.submit(bad).wait().error, ErrorCode::kBadRequest);

  Request over = small_request("over");
  over.n_molecules = 64;  // > max_molecules
  EXPECT_EQ(server.submit(over).wait().error, ErrorCode::kBudgetExceeded);

  Request invalid = small_request("invalid");
  invalid.config.n_clusters = -4;  // machine config fails validation
  const Response r = server.submit(invalid).wait();
  EXPECT_EQ(r.error, ErrorCode::kBadRequest);
  EXPECT_FALSE(r.message.empty());

  server.shutdown();
  EXPECT_EQ(server.submit(small_request("late")).wait().error,
            ErrorCode::kShutdown);

  const Deltas d = probe.delta();
  EXPECT_EQ(d.submitted, 4);
  EXPECT_EQ(d.rejected, 4);
  EXPECT_EQ(d.completed + d.cancelled, 0);
  EXPECT_EQ(d.simulated, 0);
}

// ---- Correctness: payload identity and dedup. -----------------------------

TEST(Server, PayloadMatchesDirectSingleThreadedRun) {
  core::ExperimentSetup setup;
  setup.n_molecules = kSmall;
  const core::Problem problem = core::Problem::make(setup);
  tune::Candidate cand;
  cand.variant = core::Variant::kFixed;
  const tune::Metrics direct = tune::evaluate(problem, cand);
  const std::uint64_t hash =
      request_hash(cand, kSmall, tune::kModelVersion);
  const std::string want = payload_text(hash, cand, kSmall, direct);

  ServerOptions opts;
  opts.workers = 2;
  Server server(opts);
  Request req = small_request("p1", core::Variant::kFixed);
  const Response r = server.submit(req).wait();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.config_hash, hash);
  EXPECT_EQ(r.payload, want) << "server payload differs from direct run";
  EXPECT_EQ(r.served_by, "sim");
}

TEST(Server, DuplicatesSimulateExactlyOnce) {
  CounterProbe probe;
  ServerOptions opts;
  opts.workers = 2;
  Server server(opts);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(server.submit(small_request("dup-" + std::to_string(i))));
  }
  server.drain();
  std::string payload;
  for (const auto& h : handles) {
    const Response& r = h.wait();
    ASSERT_TRUE(r.ok()) << r.message;
    if (payload.empty()) payload = r.payload;
    EXPECT_EQ(r.payload, payload);
  }
  const Deltas d = probe.delta();
  EXPECT_EQ(d.submitted, 6);
  EXPECT_EQ(d.completed, 6);
  EXPECT_EQ(d.simulated, 1) << "duplicates must attach, not re-simulate";

  // Resubmission after completion: in-memory memo, still no simulation.
  const Response again = server.submit(small_request("again")).wait();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.payload, payload);
  EXPECT_EQ(again.served_by, "cache");
  EXPECT_EQ(probe.delta().simulated, 1);
}

TEST(Server, WarmPersistentCacheServesWithZeroSimulations) {
  const std::string path = testing::TempDir() + "/svc_test_cache.json";
  std::remove(path.c_str());
  ServerOptions opts;
  opts.workers = 1;
  opts.cache_path = path;
  std::string payload;
  {
    Server server(opts);
    const Response r = server.submit(small_request("cold")).wait();
    ASSERT_TRUE(r.ok());
    payload = r.payload;
  }  // shutdown saves the cache atomically
  CounterProbe probe;
  {
    Server server(opts);
    const Response r = server.submit(small_request("warm")).wait();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.served_by, "cache");
    EXPECT_EQ(r.payload, payload) << "persistent cache altered the payload";
  }
  const Deltas d = probe.delta();
  EXPECT_EQ(d.simulated, 0);
  EXPECT_EQ(d.cache_hit, 1);
  std::remove(path.c_str());
}

// ---- Cancellation, deadlines, queue-full. ---------------------------------

TEST(Server, CancelBeforeRunAndQueueFull) {
  CounterProbe probe;
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_cap = 1;
  Server server(opts);

  // Occupy the single worker with a slow job (~40 ms)...
  Request slow = small_request("slow");
  slow.n_molecules = kSlow;
  JobHandle busy = server.submit(slow);
  // ...wait until the worker picked it up (the queue slot frees)...
  while (server.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // ...queue a victim behind it and cancel it long before it can start.
  JobHandle victim = server.submit(small_request("victim"));
  EXPECT_EQ(server.cancel("victim"), 1u);
  EXPECT_EQ(server.cancel("no-such-id"), 0u);
  // The queue (cap 1) now holds the victim: a third job must reject.
  const Response full = server.submit(small_request("third", core::Variant::kExpanded)).wait();
  EXPECT_EQ(full.error, ErrorCode::kQueueFull);

  EXPECT_EQ(victim.wait().error, ErrorCode::kCancelled);
  EXPECT_TRUE(busy.wait().ok());
  server.drain();
  const Deltas d = probe.delta();
  EXPECT_EQ(d.submitted, 3);
  EXPECT_EQ(d.completed, 1);
  EXPECT_EQ(d.cancelled, 1);
  EXPECT_EQ(d.rejected, 1);
  EXPECT_EQ(d.simulated, 1) << "the cancelled job must not simulate";
}

TEST(Server, DeadlineExceededBehindSlowJob) {
  ServerOptions opts;
  opts.workers = 1;
  Server server(opts);
  Request slow = small_request("slow");
  slow.n_molecules = kSlow;  // ~40 ms >> the 1 ms deadline behind it
  JobHandle busy = server.submit(slow);
  Request hurried = small_request("hurried", core::Variant::kExpanded);
  hurried.timeout_ms = 1;
  const Response r = server.submit(hurried).wait();
  EXPECT_EQ(r.error, ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(busy.wait().ok());
}

// A cancelled duplicate never blocks the other requesters of its config:
// the simulation proceeds and everyone else still gets the result.
TEST(Server, CancelledDuplicateDoesNotPoisonTheJob) {
  ServerOptions opts;
  opts.workers = 1;
  Server server(opts);
  Request slow = small_request("slow");
  slow.n_molecules = kSlow;
  JobHandle busy = server.submit(slow);
  while (server.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  JobHandle keep = server.submit(small_request("keep"));
  JobHandle drop = server.submit(small_request("drop"));  // same config: attaches
  EXPECT_EQ(server.cancel("drop"), 1u);
  EXPECT_EQ(drop.wait().error, ErrorCode::kCancelled);
  const Response& kept = keep.wait();
  ASSERT_TRUE(kept.ok()) << kept.message;
  EXPECT_FALSE(kept.payload.empty());
  EXPECT_TRUE(busy.wait().ok());
}

// ---- The randomized concurrency property. ---------------------------------
//
// A fixed-seed random mix of duplicate configs, priorities, tight
// deadlines and mid-stream cancellations, replayed at several worker
// counts. Two invariants must hold for every run:
//   1. conservation: submitted == completed + cancelled + rejected;
//   2. determinism: every kOk payload for a config is byte-identical to
//      the single-threaded reference payload of that config.
TEST(ServerProperty, RandomMixConservesCountersAndPayloads) {
  constexpr int kRequests = 48;
  constexpr int kUnique = 5;

  // Reference payloads, computed once, single-threaded, outside a server.
  core::ExperimentSetup setup;
  setup.n_molecules = kSmall;
  const core::Problem problem = core::Problem::make(setup);
  std::vector<tune::Candidate> configs(kUnique);
  std::vector<std::string> want(kUnique);
  for (int u = 0; u < kUnique; ++u) {
    configs[u].unroll = 1 + u;  // distinct, all valid
    const tune::Metrics m = tune::evaluate(problem, configs[u]);
    want[u] = payload_text(request_hash(configs[u], kSmall,
                                        tune::kModelVersion),
                           configs[u], kSmall, m);
  }

  for (const int workers : {1, 4}) {
    CounterProbe probe;
    std::mt19937 rng(20260809);  // same mix for every worker count
    ServerOptions opts;
    opts.workers = workers;
    opts.queue_cap = 8;  // tight: the mix provokes real kQueueFull paths
    Server server(opts);
    std::vector<JobHandle> handles;
    std::vector<int> config_of;
    for (int i = 0; i < kRequests; ++i) {
      Request req;
      req.id = "mix-" + std::to_string(i);
      const int u = static_cast<int>(rng() % kUnique);
      req.config = configs[u];
      req.n_molecules = kSmall;
      req.priority = static_cast<int>(rng() % 3);
      if (rng() % 8 == 0) req.timeout_ms = 1;     // some tight deadlines
      handles.push_back(server.submit(req));
      config_of.push_back(u);
      if (rng() % 6 == 0) {                       // some mid-stream cancels
        server.cancel("mix-" + std::to_string(rng() % (i + 1)));
      }
    }
    server.drain();
    int completed = 0, cancelled = 0, rejected = 0;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      const Response& r = handles[i].wait();
      switch (r.error) {
        case ErrorCode::kOk:
          ++completed;
          EXPECT_EQ(r.payload, want[static_cast<std::size_t>(config_of[i])])
              << "payload for " << r.id << " differs from the reference at "
              << workers << " workers";
          break;
        case ErrorCode::kCancelled:
        case ErrorCode::kDeadlineExceeded: ++cancelled; break;
        default: ++rejected; break;
      }
    }
    server.shutdown();
    const Deltas d = probe.delta();
    EXPECT_EQ(d.submitted, kRequests);
    EXPECT_EQ(d.completed, completed);
    EXPECT_EQ(d.cancelled, cancelled);
    EXPECT_EQ(d.rejected, rejected);
    EXPECT_EQ(d.submitted, d.completed + d.cancelled + d.rejected)
        << "counter conservation violated at " << workers << " workers";
    EXPECT_LE(d.simulated, kUnique) << "more simulations than unique configs";
    EXPECT_GT(completed, 0) << "the mix should complete at least one request";
  }
}

// ---- Wire v2: partition timing and trace id (DESIGN.md section 15). -------

TEST(Wire, ResponseTimingAndTraceRoundTripExactly) {
  Response r;
  r.id = "t";
  r.error = ErrorCode::kCancelled;
  r.message = "cancelled";
  r.config_hash = 0x1122334455667788ull;
  r.served_by = "";
  r.trace_id = 0xfeedfacecafebeefull;
  r.admission_ns = 11;
  r.queue_ns = 22;
  r.lookup_ns = 33;
  r.simulate_ns = 44;
  r.serialize_ns = 55;
  r.complete_ns = 66;
  r.total_ns = 11 + 22 + 33 + 44 + 55 + 66;
  const obs::Json j = r.to_json();
  EXPECT_EQ(j.at("schema_version").as_int(), kWireSchemaVersion);
  const Response back = Response::from_json(j);
  EXPECT_EQ(back.trace_id, r.trace_id);
  EXPECT_EQ(back.admission_ns, 11);
  EXPECT_EQ(back.queue_ns, 22);
  EXPECT_EQ(back.lookup_ns, 33);
  EXPECT_EQ(back.simulate_ns, 44);
  EXPECT_EQ(back.serialize_ns, 55);
  EXPECT_EQ(back.complete_ns, 66);
  EXPECT_EQ(back.total_ns, r.total_ns);
}

TEST(Wire, VersionOneResponsesStillParse) {
  // A version-1 record (pre-partition timing, no trace id): the fields
  // added in version 2 default to zero instead of throwing.
  obs::Json j = obs::Json::object();
  j.set("schema_version", 1);
  j.set("id", "old");
  j.set("error", error_code_name(ErrorCode::kCancelled));
  j.set("message", "cancelled");
  j.set("config_hash", "00000000000000ff");
  j.set("served_by", "");
  obs::Json t = obs::Json::object();
  t.set("queue_ns", 100);
  t.set("lookup_ns", 5);
  t.set("simulate_ns", 0);
  t.set("serialize_ns", 0);
  t.set("total_ns", 150);
  j.set("timing", std::move(t));
  const Response r = Response::from_json(j);
  EXPECT_EQ(r.error, ErrorCode::kCancelled);
  EXPECT_EQ(r.config_hash, 0xffu);
  EXPECT_EQ(r.trace_id, 0u);
  EXPECT_EQ(r.admission_ns, 0);
  EXPECT_EQ(r.complete_ns, 0);
  EXPECT_EQ(r.queue_ns, 100);
  EXPECT_EQ(r.total_ns, 150);
}

/// The DESIGN.md section 15 sum-to-total invariant for one response.
std::int64_t phase_sum(const Response& r) {
  return r.admission_ns + r.queue_ns + r.lookup_ns + r.simulate_ns +
         r.serialize_ns + r.complete_ns;
}

TEST(Server, SingleRequestPhasesPartitionTotalExactly) {
  ServerOptions opts;
  opts.workers = 1;
  Server server(opts);
  const Response r = server.submit(small_request("one")).wait();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_NE(r.trace_id, 0u) << "every request gets a trace";
  EXPECT_GT(r.total_ns, 0);
  EXPECT_EQ(phase_sum(r), r.total_ns)
      << "the six phases must partition the end-to-end latency";
  // Every phase is a non-negative interval of the boundary chain.
  for (const std::int64_t ns : {r.admission_ns, r.queue_ns, r.lookup_ns,
                                r.simulate_ns, r.serialize_ns, r.complete_ns}) {
    EXPECT_GE(ns, 0);
  }
  // The ok response fed all four latency histograms.
  EXPECT_EQ(server.queue_wait_hist().count(), 1u);
  EXPECT_EQ(server.execute_hist().count(), 1u);
  EXPECT_EQ(server.serialize_hist().count(), 1u);
  EXPECT_EQ(server.total_hist().count(), 1u);
  EXPECT_EQ(server.total_hist().sum_ns(), r.total_ns);
  // And the stats snapshot carries them under the telemetry names.
  const obs::Json stats = server.stats_json();
  EXPECT_EQ(stats.at("svc.latency.total").at("count").as_int(), 1);
}

// ---- The acceptance property: span trees partition latency. ----------------
//
// The ISSUE acceptance criterion, verbatim: under a randomized mix of
// duplicates, cancellations and tight deadlines at several worker
// counts, every response's six phases sum to its end-to-end latency
// exactly, and the span tree of every request -- recovered from the
// in-memory log, from the Chrome trace export, and from the JSONL event
// log -- partitions the root span exactly, with the root's duration
// equal to the response's total_ns.
TEST(ServerProperty, SpanTreesPartitionLatencyUnderRandomMix) {
  constexpr int kRequests = 32;
  constexpr int kUnique = 4;
  std::vector<tune::Candidate> configs(kUnique);
  for (int u = 0; u < kUnique; ++u) configs[u].unroll = 1 + u;

  for (const int workers : {1, 4}) {
    const std::string events_path =
        testing::TempDir() + "/svc_test_spans_" + std::to_string(workers) +
        ".jsonl";
    obs::EventLog events;
    events.open(events_path);
    ServerOptions opts;
    opts.workers = workers;
    opts.queue_cap = 8;
    opts.record_spans = true;
    opts.event_log = &events;
    std::vector<Response> responses;
    {
      Server server(opts);
      std::mt19937 rng(20260810);
      std::vector<JobHandle> handles;
      for (int i = 0; i < kRequests; ++i) {
        Request req;
        req.id = "span-" + std::to_string(i);
        req.config = configs[rng() % kUnique];
        req.n_molecules = kSmall;
        req.priority = static_cast<int>(rng() % 3);
        if (rng() % 8 == 0) req.timeout_ms = 1;
        handles.push_back(server.submit(req));
        if (rng() % 6 == 0) {
          server.cancel("span-" + std::to_string(rng() % (i + 1)));
        }
      }
      server.drain();
      for (const JobHandle& h : handles) responses.push_back(h.wait());

      // 1. Every response -- completed, cancelled, timed out or rejected
      //    -- partitions exactly.
      std::map<std::uint64_t, const Response*> by_trace;
      for (const Response& r : responses) {
        EXPECT_EQ(phase_sum(r), r.total_ns)
            << r.id << " (" << error_code_name(r.error) << ") at " << workers
            << " workers";
        EXPECT_NE(r.trace_id, 0u);
        by_trace[r.trace_id] = &r;
      }
      ASSERT_EQ(by_trace.size(), responses.size())
          << "trace ids must be unique per request";

      // One reusable checker for all three recovery paths.
      const auto check_trees = [&](const std::vector<obs::SpanRecord>& spans,
                                   const char* source) {
        std::map<std::uint64_t, std::vector<obs::SpanRecord>> traces;
        for (const obs::SpanRecord& s : spans) {
          traces[s.ctx.trace_id].push_back(s);
        }
        ASSERT_EQ(traces.size(), responses.size())
            << source << ": one trace per request at " << workers << " workers";
        for (const auto& [trace_id, tree] : traces) {
          std::string why;
          EXPECT_TRUE(obs::spans_partition_exactly(tree, &why))
              << source << ": " << why;
          ASSERT_EQ(tree.size(), 7u) << source << ": root + six phases";
          ASSERT_TRUE(by_trace.count(trace_id)) << source;
          const Response& r = *by_trace[trace_id];
          for (const obs::SpanRecord& s : tree) {
            if (s.ctx.parent_id != 0) continue;  // the root span
            EXPECT_EQ(s.duration_ns(), r.total_ns)
                << source << ": root span of " << r.id
                << " must cover exactly the end-to-end latency";
            EXPECT_EQ(s.arg, r.id) << source;
          }
        }
      };

      // 2. The in-memory span log.
      check_trees(server.spans().snapshot(), "span log");

      // 3. The Chrome trace export, parsed back from rendered JSON.
      obs::TraceSink sink;
      server.spans().append_chrome(&sink);
      const obs::Json chrome = obs::Json::parse(sink.chrome_json().dump(0));
      check_trees(obs::spans_from_chrome(chrome), "chrome trace");

      server.shutdown();
    }

    // 4. The JSONL event log, reloaded from disk after the server died.
    events.close();
    const obs::EventLogLoad load = obs::load_event_log(events_path);
    EXPECT_EQ(load.dropped, 0u);
    std::vector<obs::SpanRecord> from_log;
    for (const obs::Json& e : load.events) {
      if (e.at("type").as_string() == "span") {
        from_log.push_back(obs::span_from_json(e));
      }
    }
    std::map<std::uint64_t, std::vector<obs::SpanRecord>> traces;
    for (const obs::SpanRecord& s : from_log) {
      traces[s.ctx.trace_id].push_back(s);
    }
    EXPECT_EQ(traces.size(), responses.size())
        << "event log: one trace per request at " << workers << " workers";
    for (const auto& [trace_id, tree] : traces) {
      std::string why;
      EXPECT_TRUE(obs::spans_partition_exactly(tree, &why))
          << "event log: " << why;
    }
    std::remove(events_path.c_str());
  }
}

// ---- Histogram fidelity at load (satellite of DESIGN.md section 15). ------
//
// 1000+ requests through the real server: the four service histograms
// must agree with the exact sorted per-response latencies to within the
// documented kQuantileRelErr bound, at every headline quantile.
TEST(ServerProperty, HistogramQuantilesTrackExactSortedLatencies) {
  constexpr int kRequests = 1000;
  constexpr int kUnique = 6;
  std::vector<tune::Candidate> configs(kUnique);
  for (int u = 0; u < kUnique; ++u) configs[u].unroll = 1 + u;

  ServerOptions opts;
  opts.workers = 4;
  opts.queue_cap = kRequests;
  Server server(opts);
  std::vector<JobHandle> handles;
  handles.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.id = "load-" + std::to_string(i);
    req.config = configs[i % kUnique];
    req.n_molecules = kSmall;
    handles.push_back(server.submit(req));
  }
  server.drain();

  std::vector<std::int64_t> queue_wait, execute, serialize, total;
  for (const JobHandle& h : handles) {
    const Response& r = h.wait();
    ASSERT_TRUE(r.ok()) << r.id << ": " << r.message;
    ASSERT_EQ(phase_sum(r), r.total_ns) << r.id;
    queue_wait.push_back(r.queue_ns);
    execute.push_back(r.lookup_ns + r.simulate_ns);
    serialize.push_back(r.serialize_ns);
    total.push_back(r.total_ns);
  }

  const auto check = [](const obs::LatencyHistogram& h,
                        std::vector<std::int64_t> exact, const char* name) {
    ASSERT_EQ(h.count(), exact.size()) << name;
    std::sort(exact.begin(), exact.end());
    for (const double q : {0.50, 0.90, 0.95, 0.99}) {
      const auto rank = std::min<std::size_t>(
          exact.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(exact.size())));
      const double want = static_cast<double>(exact[rank]);
      const double got = h.quantile(q);
      EXPECT_LE(std::abs(got - want),
                std::max(1.0, want * obs::LatencyHistogram::kQuantileRelErr))
          << name << " p" << q * 100 << ": histogram " << got << " vs exact "
          << want;
    }
    EXPECT_EQ(h.max_ns(), exact.back()) << name;
  };
  check(server.queue_wait_hist(), queue_wait, "svc.latency.queue_wait");
  check(server.execute_hist(), execute, "svc.latency.execute");
  check(server.serialize_hist(), serialize, "svc.latency.serialize");
  check(server.total_hist(), total, "svc.latency.total");
}

// ---- Telemetry-name drift guard (DESIGN.md section 15 table). --------------
//
// The analogue of the analysis check-catalogue test: every metric the
// service and tracing layers emit must appear exactly once in the
// DESIGN.md telemetry table, and the table must not list names the code
// no longer emits.
TEST(Telemetry, EveryMetricAppearsExactlyOnceInDesignTable) {
  const std::string path = std::string(SMD_SOURCE_DIR) + "/DESIGN.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::map<std::string, int> seen;  // table-row metric names -> occurrences
  std::string line;
  while (std::getline(in, line)) {
    // Table rows of the form "| `svc.jobs.submitted` | counter | ... |".
    if (line.rfind("| `", 0) != 0) continue;
    const std::size_t close = line.find('`', 3);
    if (close == std::string::npos) continue;
    const std::string name = line.substr(3, close - 3);
    if (name.rfind("svc.", 0) != 0 && name.rfind("tune.", 0) != 0 &&
        name.rfind("obs.", 0) != 0) {
      continue;
    }
    ++seen[name];
  }
  for (const MetricInfo& m : known_metric_names()) {
    EXPECT_EQ(seen[m.name], 1)
        << m.name << " must appear exactly once in the DESIGN.md "
        << "telemetry table";
    seen.erase(m.name);
  }
  for (const auto& [name, n] : seen) {
    ADD_FAILURE() << "DESIGN.md telemetry table lists " << name << " (" << n
                  << "x) but svc::known_metric_names() does not";
  }
}

}  // namespace
}  // namespace smd::svc
